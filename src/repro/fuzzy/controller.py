"""The fuzzy controller: fuzzifier → inference engine → defuzzifier.

:class:`FuzzyController` is the user-facing object of the generic fuzzy
substrate (paper Fig. 2).  It binds input/output
:class:`~repro.fuzzy.variables.LinguisticVariable` objects to a
:class:`~repro.fuzzy.rules.RuleBase` and exposes:

* :meth:`evaluate` — one crisp output for one set of crisp inputs;
* :meth:`evaluate_batch` — vectorised evaluation over ``(N,)`` input
  arrays, the hot path used by the simulator and the benchmarks;
* :meth:`explain` — a structured trace (grades, rule firings, output
  surface) for one sample, used by the examples and for debugging rule
  bases;
* :meth:`decision_surface` — dense grid evaluation for plotting /
  regression-testing the control surface.

Both evaluation paths route through the compiled-kernel registry of
:mod:`repro.fuzzy.compiled`: the ``backend`` pin (constructor argument
or per-call override, resolved by
:func:`~repro.fuzzy.compiled.resolve_flc_backend`) selects between the
exact ``reference`` grid pipeline (the default) and the precompiled
interpolation kernels (``lut``, optional ``numba``).  Compiled kernels
are built lazily on first use and cached per controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from .compiled import (
    DEFAULT_FLC_BACKEND,
    controller_kernel,
    resolve_flc_backend,
    validate_backend_pin,
    variables_fingerprint,
)
from .defuzzify import get_defuzzifier, weighted_average
from .inference import AggMethod, AndMethod, ImplicationMethod, MamdaniInference
from .rules import Rule, RuleBase
from .variables import LinguisticVariable

__all__ = ["FuzzyController", "RuleFiring", "Explanation"]


@dataclass(frozen=True)
class RuleFiring:
    """One rule's contribution in an :class:`Explanation`."""

    rule: Rule
    activation: float


@dataclass(frozen=True)
class Explanation:
    """Structured trace of a single controller evaluation."""

    inputs: dict[str, float]
    memberships: dict[str, dict[str, float]]
    firings: tuple[RuleFiring, ...]
    term_activation: dict[str, float]
    output: float

    def top_rules(self, k: int = 5) -> list[RuleFiring]:
        """The ``k`` most strongly firing rules."""
        return sorted(self.firings, key=lambda f: -f.activation)[:k]

    def describe(self, max_rules: int = 5) -> str:
        """Human-readable multi-line trace."""
        lines = [
            "inputs: "
            + ", ".join(f"{k}={v:.4g}" for k, v in self.inputs.items()),
            "term activations: "
            + ", ".join(f"{k}={v:.3f}" for k, v in self.term_activation.items()),
        ]
        for f in self.top_rules(max_rules):
            if f.activation > 0:
                lines.append(f"  [{f.activation:.3f}] {f.rule.describe()}")
        lines.append(f"output: {self.output:.4f}")
        return "\n".join(lines)


class FuzzyController:
    """A complete Mamdani fuzzy controller.

    Parameters
    ----------
    rule_base:
        Bound rule base (carries the input/output variables).
    and_method, agg_method, implication:
        Inference operators; see :class:`MamdaniInference`.
    defuzzifier:
        ``"centroid"`` (default), ``"bisector"``, ``"mom"``, ``"som"``,
        ``"lom"`` — area-based on a sampled output universe — or
        ``"wavg"`` for the sampling-free weighted average of term
        centroids.
    resolution:
        Output-universe sample count for the area-based defuzzifiers.
    backend:
        Inference-backend pin for this controller (``None`` = the
        :func:`~repro.fuzzy.compiled.resolve_flc_backend` policy:
        ``REPRO_FLC_BACKEND`` environment variable, then
        ``"reference"``).  A name unknown on the executing host fails
        at first evaluation, which is what lets a pickled spec choose
        per-host kernels.
    """

    def __init__(
        self,
        rule_base: RuleBase,
        and_method: AndMethod = "min",
        agg_method: AggMethod = "max",
        implication: ImplicationMethod = "min",
        defuzzifier: str = "centroid",
        resolution: int = 201,
        backend: Optional[str] = None,
    ) -> None:
        validate_backend_pin(backend)
        self.backend = backend
        self._compiled: dict[str, object] = {}
        self.rule_base = rule_base
        self.engine = MamdaniInference(
            rule_base,
            and_method=and_method,
            agg_method=agg_method,
            implication=implication,
            resolution=resolution,
        )
        self.defuzzifier_name = defuzzifier
        if defuzzifier == "wavg":
            self._area_defuzz = None
        else:
            self._area_defuzz = get_defuzzifier(defuzzifier)
        out = rule_base.output_variable
        self._term_centroids = np.array([t.mf.centroid for t in out.terms])
        self._output_fallback = 0.5 * (out.universe[0] + out.universe[1])

    # ------------------------------------------------------------------
    @property
    def input_variables(self) -> tuple[LinguisticVariable, ...]:
        return self.rule_base.input_variables

    @property
    def output_variable(self) -> LinguisticVariable:
        return self.rule_base.output_variable

    @property
    def input_names(self) -> tuple[str, ...]:
        return self.rule_base.variable_names

    # ------------------------------------------------------------------
    def _coerce_batch(
        self, inputs: Union[Mapping[str, np.ndarray], Sequence[np.ndarray]]
    ) -> list[np.ndarray]:
        """Normalise inputs (mapping or positional sequence) to arrays in
        variable order, broadcast to a common length."""
        if isinstance(inputs, Mapping):
            missing = set(self.input_names) - set(inputs)
            if missing:
                raise ValueError(f"missing input(s): {sorted(missing)}")
            extra = set(inputs) - set(self.input_names)
            if extra:
                raise ValueError(f"unknown input(s): {sorted(extra)}")
            cols = [np.atleast_1d(np.asarray(inputs[n], dtype=float))
                    for n in self.input_names]
        else:
            seq = list(inputs)
            if len(seq) != len(self.input_names):
                raise ValueError(
                    f"expected {len(self.input_names)} input arrays "
                    f"({', '.join(self.input_names)}), got {len(seq)}"
                )
            cols = [np.atleast_1d(np.asarray(c, dtype=float)) for c in seq]
        n = max(c.shape[0] for c in cols)
        out = []
        for name, c in zip(self.input_names, cols):
            if c.ndim != 1:
                raise ValueError(f"input {name!r} must be scalar or 1-D")
            if c.shape[0] == n:
                out.append(c)
            elif c.shape[0] == 1:
                out.append(np.full(n, c[0]))
            else:
                raise ValueError(
                    f"input {name!r} has length {c.shape[0]}, expected {n} or 1"
                )
        return out

    # ------------------------------------------------------------------
    def _reference_batch(self, cols: Sequence[np.ndarray]) -> np.ndarray:
        """The exact grid Mamdani pipeline on coerced input columns —
        the ``reference`` backend of :mod:`repro.fuzzy.compiled` and the
        conformance oracle every compiled kernel is pinned against."""
        memberships = [
            var.membership_matrix(col)
            for var, col in zip(self.input_variables, cols)
        ]
        result = self.engine.infer(memberships)
        if self._area_defuzz is None:
            return weighted_average(
                self._term_centroids,
                result.term_activation,
                self._output_fallback,
            )
        surface = self.engine.aggregate_output(result.term_activation)
        return self._area_defuzz(self.engine.output_grid, surface)

    def _structural_key(self) -> tuple:
        """Hashable fingerprint of everything that shapes the decision
        surface — the process-wide LUT cache key, so structurally equal
        controllers (every shard of a fleet) share one compiled table."""
        rb = self.rule_base
        ant, con, w = rb.compile_indices()
        return (
            "mamdani",
            variables_fingerprint((*rb.input_variables, rb.output_variable)),
            ant.tobytes(),
            con.tobytes(),
            w.tobytes(),
            self.engine.and_method,
            self.engine.agg_method,
            self.engine.implication,
            self.engine.resolution,
            self.defuzzifier_name,
        )

    def evaluate_batch(
        self,
        inputs: Union[Mapping[str, np.ndarray], Sequence[np.ndarray]],
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Crisp outputs for a batch of crisp inputs.

        ``inputs`` is either a mapping ``{variable name: (N,) array}`` or
        a positional sequence in rule-base variable order.  Scalars and
        length-1 arrays broadcast.  Returns an ``(N,)`` array.

        ``backend`` overrides the inference backend for this call
        (``None`` = the controller's pin, then the
        :func:`~repro.fuzzy.compiled.resolve_flc_backend` policy).
        """
        cols = self._coerce_batch(inputs)
        name = resolve_flc_backend(
            self.backend if backend is None else backend
        )
        if name == DEFAULT_FLC_BACKEND:
            return self._reference_batch(cols)
        return controller_kernel(self, name)(cols)

    def evaluate(
        self, *args: float, backend: Optional[str] = None, **kwargs: float
    ) -> float:
        """Scalar evaluation.

        Accepts positional crisp inputs in variable order or keyword
        inputs by variable name (not both); ``backend`` overrides the
        inference backend as in :meth:`evaluate_batch`.
        """
        if args and kwargs:
            raise TypeError("pass inputs either positionally or by name, not both")
        if kwargs:
            out = self.evaluate_batch(
                {k: np.array([v]) for k, v in kwargs.items()},
                backend=backend,
            )
        else:
            if len(args) != len(self.input_names):
                raise TypeError(
                    f"expected {len(self.input_names)} inputs "
                    f"({', '.join(self.input_names)}), got {len(args)}"
                )
            out = self.evaluate_batch(
                [np.array([a]) for a in args], backend=backend
            )
        return float(out[0])

    __call__ = evaluate

    # ------------------------------------------------------------------
    def explain(self, **inputs: float) -> Explanation:
        """Full trace of a single evaluation (for humans)."""
        missing = set(self.input_names) - set(inputs)
        if missing:
            raise ValueError(f"missing input(s): {sorted(missing)}")
        cols = [np.array([float(inputs[n])]) for n in self.input_names]
        memberships = [
            var.membership_matrix(col)
            for var, col in zip(self.input_variables, cols)
        ]
        result = self.engine.infer(memberships)
        if self._area_defuzz is None:
            crisp = float(
                weighted_average(
                    self._term_centroids,
                    result.term_activation,
                    self._output_fallback,
                )[0]
            )
        else:
            surface = self.engine.aggregate_output(result.term_activation)
            crisp = float(self._area_defuzz(self.engine.output_grid, surface)[0])
        firings = tuple(
            RuleFiring(rule, float(result.rule_activation[i, 0]))
            for i, rule in enumerate(self.rule_base.rules)
        )
        grades = {
            var.name: {
                t.name: float(m[j, 0]) for j, t in enumerate(var.terms)
            }
            for var, m in zip(self.input_variables, memberships)
        }
        term_act = {
            t.name: float(result.term_activation[j, 0])
            for j, t in enumerate(self.output_variable.terms)
        }
        return Explanation(
            inputs={n: float(inputs[n]) for n in self.input_names},
            memberships=grades,
            firings=firings,
            term_activation=term_act,
            output=crisp,
        )

    # ------------------------------------------------------------------
    def decision_surface(
        self,
        sweep: Mapping[str, np.ndarray],
        fixed: Mapping[str, float] | None = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Evaluate the controller on a dense grid.

        Parameters
        ----------
        sweep:
            Mapping of one to three variable names to 1-D sample arrays.
        fixed:
            Crisp values for the remaining variables.
        backend:
            Inference-backend override, as in :meth:`evaluate_batch`
            (the LUT compiler drives this method plane by plane with
            ``backend="reference"``).

        Returns
        -------
        1-D array (one sweep variable) or an N-D array with one axis
        per sweep variable in mapping order (the first varies along
        rows).
        """
        fixed = dict(fixed or {})
        sweep_names = list(sweep)
        if not (1 <= len(sweep_names) <= len(self.input_names)):
            raise ValueError(
                "decision_surface sweeps between one and "
                f"{len(self.input_names)} variables"
            )
        needed = set(self.input_names) - set(sweep_names) - set(fixed)
        if needed:
            raise ValueError(f"missing fixed value(s) for: {sorted(needed)}")
        axes = [np.asarray(sweep[n], dtype=float) for n in sweep_names]
        if len(axes) == 1:
            batch = {sweep_names[0]: axes[0]}
            size = axes[0].shape[0]
        else:
            mesh = np.meshgrid(*axes, indexing="ij")
            batch = {n: m.ravel() for n, m in zip(sweep_names, mesh)}
            size = mesh[0].size
        for k, v in fixed.items():
            batch[k] = np.full(size, v)
        out = self.evaluate_batch(batch, backend=backend)
        if len(axes) == 1:
            return out
        return out.reshape(tuple(a.shape[0] for a in axes))

    def __repr__(self) -> str:
        return (
            f"FuzzyController(inputs=[{', '.join(self.input_names)}], "
            f"output={self.output_variable.name!r}, "
            f"rules={len(self.rule_base)}, "
            f"defuzzifier={self.defuzzifier_name!r})"
        )
