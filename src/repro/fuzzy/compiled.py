"""Compiled FLC decision kernels — the fuzzy-inference backend registry.

With measurement vectorised, fleets sharded and the pathloss kernel
pluggable, the per-epoch :meth:`FuzzyController.evaluate_batch` call is
the last unoptimised hot layer of a fleet run: a full Mamdani pipeline
(membership grids → rule activations → aggregation → centroid over the
sampled output universe) executed once per epoch per shard.  But the
paper's FLC is a *fixed* function of three crisp inputs once the rule
base is frozen — so, exactly like :mod:`repro.radio.backends` did for
the physics, this module factors FLC inference out behind one narrow
contract and a registry of interchangeable implementations:

``factory(controller) -> kernel``; ``kernel(cols) -> outputs``
    * ``controller`` — any object exposing ``input_variables`` /
      ``input_names``, a ``_reference_batch(cols)`` method running its
      exact seed inference pipeline, and (for cacheability) a
      ``_structural_key()`` fingerprint
      (:class:`~repro.fuzzy.controller.FuzzyController` and
      :class:`~repro.fuzzy.sugeno.SugenoController` both qualify);
    * ``cols`` — one ``(N,)`` float64 array per input variable, in
      rule-base variable order, already coerced/broadcast by the caller;
    * returns ``(N,)`` float64 crisp outputs.

Kernels must be *pure* and *elementwise per sample* — no cross-sample
coupling — which is what keeps batch, shard and scalar evaluation
interchangeable.

Built-in backends
-----------------
``reference`` (the default)
    The controller's own grid inference path
    (``controller._reference_batch``) behind the contract.  This is the
    conformance oracle every other backend is tested against, and the
    policy default: approximate kernels are always opt-in.
``lut``
    Precompiles the controller's decision surface onto a dense
    rectilinear 3-D grid (driving
    :meth:`~repro.fuzzy.controller.FuzzyController.decision_surface`
    plane by plane on the ``reference`` backend) and evaluates by
    vectorised multilinear interpolation.  The grid is *anchor-aligned*:
    every membership-function breakpoint (core/support vertex) lies
    exactly on a grid plane, so the interpolant only ever crosses the
    surface's kinks along cell diagonals.  Compiled tables are cached
    per process, keyed by the controller's structural fingerprint —
    every shard of a fleet shares one table.
``numba`` (optional)
    The same precompiled table evaluated by an
    ``@njit(parallel=True)`` gather loop; probed lazily and registered
    only when the numba import succeeds, so the pure-NumPy default
    never pays the import.

Accuracy contract
-----------------
``reference`` is exact by definition.  The interpolated backends
(``lut``, ``numba``) carry a *measured, documented* absolute error
bound :data:`LUT_ERROR_BOUND` over the full input box at the default
grid resolution (:data:`LUT_POINTS_PER_SEGMENT` points per
anchor-to-anchor segment); the conformance suite pins the bound and a
Hypothesis property samples the whole box against it.  The constant is
a measurement of the *paper* controller, so :func:`build_lut`
additionally validates every compiled table against the reference at
all cell midpoints and widens the table's own
:attr:`DecisionLUT.error_bound` when a custom rule base is rougher.
Crucially the *decision* (output vs the handover threshold) is made
exact again one level up:
:meth:`repro.core.system.FuzzyHandoverSystem.decision_outputs_batch`
re-evaluates through ``reference`` every sample whose interpolated
output lands within the compiled table's validated bound of the
threshold, so ``output > threshold`` is provably identical to an
all-reference run whenever the bound holds — handover and ping-pong
counts never change.

Backend selection policy lives in one place, mirroring
:func:`repro.radio.backends.resolve_backend`: an explicit name beats
the ``REPRO_FLC_BACKEND`` environment variable beats
:data:`DEFAULT_FLC_BACKEND`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = [
    "DecisionLUT",
    "FLCKernel",
    "FLCKernelFactory",
    "register_flc_backend",
    "unregister_flc_backend",
    "available_flc_backends",
    "resolve_flc_backend",
    "get_flc_backend",
    "flc_error_bound",
    "compile_flc",
    "controller_kernel",
    "kernel_error_bound",
    "validate_backend_pin",
    "variables_fingerprint",
    "build_lut",
    "lut_build_count",
    "lut_axis_grid",
    "DEFAULT_FLC_BACKEND",
    "FLC_BACKEND_ENV_VAR",
    "LUT_POINTS_PER_SEGMENT",
    "LUT_ERROR_BOUND",
]

#: The policy default when neither an explicit name nor the environment
#: variable picks a backend.  ``reference`` — never an approximation —
#: so compiled kernels are always an explicit opt-in.
DEFAULT_FLC_BACKEND = "reference"

#: Environment variable consulted by :func:`resolve_flc_backend`.
FLC_BACKEND_ENV_VAR = "REPRO_FLC_BACKEND"

#: Default interpolation-grid density: points per anchor-to-anchor
#: segment of each input variable (the segments between consecutive
#: membership-function breakpoints).  12 points/segment puts the paper
#: controller at a (37, 37, 61) table — ~84k reference evaluations,
#: compiled once per process in well under a second.
LUT_POINTS_PER_SEGMENT = 12

#: Measured absolute error bound of the interpolated backends over the
#: full (CSSP, SSN, DMB) input box at the default grid resolution.
#: The worst observed |lut − reference| on dense random sweeps of the
#: paper controller is ~1.7e-2 (the kink diagonals of the min-rule
#: activation surfaces); 2.5e-2 adds headroom and is what the
#: conformance matrix and the Hypothesis box property pin.  It is the
#: *floor* of the decision guard band: :func:`build_lut` additionally
#: measures every compiled table's own residual (reference vs
#: interpolant at all cell midpoints, the worst-case locations of a
#: multilinear interpolant) and widens the per-table
#: :attr:`DecisionLUT.error_bound` when a custom controller's surface
#: is rougher than the paper's — the exact-decision guarantee is not a
#: property of one rule base.
LUT_ERROR_BOUND = 2.5e-2

#: Safety factor applied to the measured midpoint residual when it sets
#: the per-table bound (midpoints sample the worst-case locations, not
#: a supremum).
_RESIDUAL_SAFETY = 1.5

#: ``kernel(cols) -> (N,)`` crisp outputs for per-variable input columns.
FLCKernel = Callable[[Sequence[np.ndarray]], np.ndarray]

#: ``factory(controller) -> FLCKernel``: compiles one controller.
FLCKernelFactory = Callable[[object], FLCKernel]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
# name -> (factory, documented absolute error bound vs reference)
_REGISTRY: dict[str, tuple[FLCKernelFactory, float]] = {}


def register_flc_backend(
    name: str,
    factory: FLCKernelFactory,
    error_bound: float = 0.0,
    overwrite: bool = False,
) -> None:
    """Register a kernel factory under ``name``.

    ``error_bound`` is the documented absolute output-error bound of the
    backend vs ``reference`` (0.0 for exact backends); the decision
    guard band in :class:`~repro.core.system.FuzzyHandoverSystem` is
    exactly this wide.  Re-registering an existing name raises unless
    ``overwrite=True`` — silently shadowing the built-in kernels is how
    conformance drifts in unnoticed.
    """
    if not name or not isinstance(name, str):
        raise ValueError(
            f"FLC backend name must be a non-empty string, got {name!r}"
        )
    if not callable(factory):
        raise ValueError(f"factory for {name!r} must be callable")
    if not (isinstance(error_bound, (int, float)) and error_bound >= 0.0):
        raise ValueError(
            f"error_bound for {name!r} must be >= 0, got {error_bound!r}"
        )
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"FLC backend {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[name] = (factory, float(error_bound))


def unregister_flc_backend(name: str) -> None:
    """Remove a registered backend (KeyError if absent)."""
    del _REGISTRY[name]


def available_flc_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (probes the optional numba
    kernel on first call)."""
    _probe_optional_backends()
    return tuple(sorted(_REGISTRY))


def resolve_flc_backend(name: Optional[str] = None) -> str:
    """The shared selection policy: explicit name >
    ``REPRO_FLC_BACKEND`` environment variable >
    :data:`DEFAULT_FLC_BACKEND`."""
    if name is None:
        name = os.environ.get(FLC_BACKEND_ENV_VAR) or DEFAULT_FLC_BACKEND
    return name


def _lookup(name: str) -> tuple[FLCKernelFactory, float]:
    entry = _REGISTRY.get(name)
    if entry is None:
        _probe_optional_backends()
        entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown FLC backend {name!r}; "
            f"available: {', '.join(available_flc_backends())}"
        )
    return entry


def get_flc_backend(name: Optional[str] = None) -> FLCKernelFactory:
    """Resolve a backend name (:func:`resolve_flc_backend` policy) to
    its kernel factory; unknown names fail with the choices listed.

    The optional numba kernel is probed only when the resolved name is
    not already registered, so the default path never pays the import.
    """
    return _lookup(resolve_flc_backend(name))[0]


def flc_error_bound(name: Optional[str] = None) -> float:
    """Documented absolute output-error bound of a backend vs
    ``reference`` (0.0 for exact backends).  This is the decision
    guard-band half-width applied by
    :meth:`repro.core.system.FuzzyHandoverSystem.decision_outputs_batch`."""
    return _lookup(resolve_flc_backend(name))[1]


def compile_flc(controller, name: Optional[str] = None) -> FLCKernel:
    """Compile ``controller`` on the backend the
    :func:`resolve_flc_backend` policy selects and return its kernel."""
    return get_flc_backend(name)(controller)


def controller_kernel(controller, name: str) -> FLCKernel:
    """The compiled kernel for an already-resolved backend name, built
    on first use and memoised in the controller's ``_compiled`` map —
    the lazy-cache step both controller classes share."""
    kernel = controller._compiled.get(name)
    if kernel is None:
        kernel = compile_flc(controller, name)
        controller._compiled[name] = kernel
    return kernel


def kernel_error_bound(controller, name: str) -> float:
    """The decision guard-band half-width for ``controller`` on a
    resolved backend name.

    Exact backends return 0.0.  For interpolated backends the bound is
    the *compiled kernel's own* validated bound
    (:attr:`DecisionLUT.error_bound`, measured per table by
    :func:`build_lut`) when the controller participates in the compile
    cache, never below the registry's documented default; duck-typed
    controllers without the cache fall back to the registry bound.
    """
    base = flc_error_bound(name)
    if base <= 0.0:
        return 0.0
    if not hasattr(controller, "_compiled"):
        return base
    kernel = controller_kernel(controller, name)
    return max(base, float(getattr(kernel, "error_bound", base)))


def validate_backend_pin(backend: Optional[str], field: str = "backend") -> None:
    """Shared constructor validation for backend pins: ``None`` (the
    policy default) or a non-empty name, checked at first use."""
    if backend is not None and (
        not isinstance(backend, str) or not backend
    ):
        raise ValueError(
            f"{field} must be None or a non-empty string, got {backend!r}"
        )


def _mf_fingerprint(mf) -> tuple:
    """Exact parameter fingerprint of one membership function.

    The MF classes are ``__slots__``-backed (``vars()`` is empty), so
    walk the slots across the MRO; dict-backed user MFs fall back to
    ``vars()``.  Missing either would make structurally *different*
    controllers share one cached LUT — silently the wrong surface.
    """
    params: list[tuple[str, object]] = []
    for klass in type(mf).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(mf, slot):
                params.append((slot, getattr(mf, slot)))
    if not params and getattr(mf, "__dict__", None):
        params = sorted(vars(mf).items())
    return (type(mf).__name__, tuple(params))


def variables_fingerprint(variables) -> tuple:
    """Hashable fingerprint of a sequence of linguistic variables —
    names, universes and every term's exact membership parameters.  The
    shared building block of both controllers' ``_structural_key``
    (the process-wide LUT cache key)."""
    return tuple(
        (
            v.name,
            v.universe,
            tuple((t.name, _mf_fingerprint(t.mf)) for t in v.terms),
        )
        for v in variables
    )


# ----------------------------------------------------------------------
# reference backend — the controller's own grid pipeline, extracted
# ----------------------------------------------------------------------
def _reference_factory(controller) -> FLCKernel:
    """The controller's seed inference path behind the kernel contract
    (the conformance oracle)."""
    kernel = getattr(controller, "_reference_batch", None)
    if not callable(kernel):
        raise ValueError(
            f"{type(controller).__name__} exposes no _reference_batch "
            "inference path; cannot compile the reference backend"
        )
    return kernel


# ----------------------------------------------------------------------
# LUT backend — precompiled decision surface + multilinear interpolation
# ----------------------------------------------------------------------
def lut_axis_grid(variable, points_per_segment: int) -> np.ndarray:
    """Anchor-aligned sample grid of one input variable's universe.

    The axis breakpoints are the universe edges plus every finite
    membership-function core/support vertex inside the universe; each
    breakpoint-to-breakpoint segment is subdivided into
    ``points_per_segment`` equal steps.  Aligning the grid with the
    breakpoints means the piecewise-linear membership kinks lie exactly
    on grid planes — the interpolation error comes only from the
    cross-variable (min/product) coupling inside cells.
    """
    if points_per_segment < 1:
        raise ValueError(
            f"points_per_segment must be >= 1, got {points_per_segment}"
        )
    lo, hi = variable.universe
    breaks = {lo, hi}
    for term in variable.terms:
        for p in (*term.mf.core, *term.mf.support):
            p = float(p)
            if np.isfinite(p) and lo < p < hi:
                breaks.add(p)
    edges = sorted(breaks)
    parts = [
        np.linspace(a, b, points_per_segment + 1)[:-1]
        for a, b in zip(edges, edges[1:])
    ]
    parts.append(np.array([hi]))
    return np.concatenate(parts)


@dataclass(frozen=True)
class DecisionLUT:
    """A controller's decision surface sampled on a rectilinear grid,
    evaluated by vectorised multilinear interpolation.

    Attributes
    ----------
    grids:
        One sorted ``(n_i,)`` sample array per input variable (axis
        order = rule-base variable order).
    table:
        ``(n_0, …, n_{V-1})`` crisp outputs at every grid node.
    error_bound:
        Absolute |interpolant − reference| bound this table's decision
        guard band uses — the documented :data:`LUT_ERROR_BOUND` floor,
        widened by :func:`build_lut`'s measured midpoint residual when
        the compiled controller's surface demands it.
    """

    grids: tuple[np.ndarray, ...]
    table: np.ndarray
    error_bound: float = LUT_ERROR_BOUND

    def __post_init__(self) -> None:
        # __call__ pairs table.strides with table.reshape(-1), which is
        # only consistent in C order — normalise user-supplied layouts
        object.__setattr__(
            self,
            "grids",
            tuple(np.ascontiguousarray(g, dtype=float) for g in self.grids),
        )
        object.__setattr__(
            self, "table", np.ascontiguousarray(self.table, dtype=float)
        )
        if self.table.shape != tuple(g.shape[0] for g in self.grids):
            raise ValueError(
                f"table shape {self.table.shape} does not match grids "
                f"{tuple(g.shape[0] for g in self.grids)}"
            )

    @property
    def n_points(self) -> int:
        return int(self.table.size)

    def __call__(self, cols: Sequence[np.ndarray]) -> np.ndarray:
        """Multilinear interpolation of the table at a batch of points.

        Inputs are clipped to each axis' universe first — exactly the
        saturation the reference pipeline applies before fuzzification,
        so the LUT and the reference agree outside the box too.
        """
        if len(cols) != len(self.grids):
            raise ValueError(
                f"expected {len(self.grids)} input columns, got {len(cols)}"
            )
        idx: list[np.ndarray] = []
        frac: list[np.ndarray] = []
        for grid, col in zip(self.grids, cols):
            x = np.clip(np.asarray(col, dtype=float), grid[0], grid[-1])
            i = np.searchsorted(grid, x, side="right") - 1
            np.clip(i, 0, grid.shape[0] - 2, out=i)
            idx.append(i)
            frac.append((x - grid[i]) / (grid[i + 1] - grid[i]))
        flat = self.table.reshape(-1)
        strides = [s // self.table.itemsize for s in self.table.strides]
        base = idx[0] * strides[0]
        for i, s in zip(idx[1:], strides[1:]):
            base = base + i * s
        out = np.zeros(base.shape[0])
        # accumulate the 2^V corner contributions of each cell
        for corner in range(1 << len(self.grids)):
            weight = None
            offset = 0
            for axis, (f, s) in enumerate(zip(frac, strides)):
                if corner >> axis & 1:
                    w = f
                    offset += s
                else:
                    w = 1.0 - f
                weight = w if weight is None else weight * w
            out += weight * flat.take(base + offset)
        return out


_BUILD_CHUNK = 8192

# process-wide table cache: fleet shards, repeated runs and the numba
# wrapper all reuse one compiled surface per controller structure
_LUT_CACHE: dict[tuple, DecisionLUT] = {}

#: Process-wide count of *actual* LUT compilations (cache misses).
#: Observable via :func:`lut_build_count`; the distributed warm-path
#: tests pin that a rejoining worker serves repeat fingerprints from
#: the cache instead of recompiling.
_LUT_BUILDS = 0


def lut_build_count() -> int:
    """How many decision LUTs this process has actually compiled
    (cache hits do not count)."""
    return _LUT_BUILDS


def _sample_surface(
    controller, names: tuple[str, ...], grids: tuple[np.ndarray, ...]
) -> np.ndarray:
    """Reference-backend outputs at every node of an axis-grid mesh.

    Three-input controllers with a ``decision_surface`` method (the
    Mamdani family) are sampled plane by plane through it — bounded
    memory regardless of mesh size; anything else falls back to chunked
    ``evaluate_batch`` sweeps over the mesh.
    """
    shape = tuple(g.shape[0] for g in grids)
    surface = getattr(controller, "decision_surface", None)
    if callable(surface) and len(grids) == 3:
        table = np.empty(shape)
        for i, x0 in enumerate(grids[0]):
            table[i] = surface(
                {names[1]: grids[1], names[2]: grids[2]},
                fixed={names[0]: float(x0)},
                backend="reference",
            )
        return table
    mesh = np.meshgrid(*grids, indexing="ij")
    points = np.stack([m.ravel() for m in mesh], axis=-1)
    out = np.empty(points.shape[0])
    for s in range(0, points.shape[0], _BUILD_CHUNK):
        block = points[s : s + _BUILD_CHUNK]
        out[s : s + _BUILD_CHUNK] = controller.evaluate_batch(
            {nm: block[:, v] for v, nm in enumerate(names)},
            backend="reference",
        )
    return out.reshape(shape)


def build_lut(
    controller,
    points_per_segment: int = LUT_POINTS_PER_SEGMENT,
) -> DecisionLUT:
    """Sample ``controller``'s full decision surface onto an
    anchor-aligned grid (always through the ``reference`` backend) and
    *validate* the compiled table.

    After sampling the nodes, the interpolant is checked against the
    reference at every cell midpoint — the worst-case locations of a
    multilinear interpolant — and the table's
    :attr:`DecisionLUT.error_bound` is widened beyond the documented
    :data:`LUT_ERROR_BOUND` floor when the measured residual (times a
    safety factor) demands it.  The decision guard band follows the
    per-table bound, so the exact-decision guarantee holds for custom
    rule bases with rougher surfaces than the paper's, not just the
    controller the global constant was measured on.

    Results are cached per process by the controller's structural
    fingerprint, so compiling the same rule base twice (every shard of
    a fleet) costs one table.
    """
    key = None
    skey = getattr(controller, "_structural_key", None)
    if callable(skey):
        key = (skey(), int(points_per_segment))
        cached = _LUT_CACHE.get(key)
        if cached is not None:
            return cached
    global _LUT_BUILDS
    _LUT_BUILDS += 1
    names = tuple(controller.input_names)
    grids = tuple(
        lut_axis_grid(v, points_per_segment)
        for v in controller.input_variables
    )
    table = _sample_surface(controller, names, grids)
    draft = DecisionLUT(grids, table)
    mid_grids = tuple(0.5 * (g[:-1] + g[1:]) for g in grids)
    mid_mesh = np.meshgrid(*mid_grids, indexing="ij")
    residual = np.abs(
        draft([m.ravel() for m in mid_mesh])
        - _sample_surface(controller, names, mid_grids).ravel()
    )
    bound = max(LUT_ERROR_BOUND, _RESIDUAL_SAFETY * float(residual.max()))
    lut = DecisionLUT(grids, table, error_bound=bound)
    if key is not None:
        _LUT_CACHE[key] = lut
    return lut


def _lut_factory(controller) -> FLCKernel:
    """Compile (or fetch the cached) decision LUT for ``controller``."""
    return build_lut(controller)


# ----------------------------------------------------------------------
# optional numba backend — the same table through a parallel gather loop
# ----------------------------------------------------------------------
_optional_probed = False


def _probe_optional_backends() -> None:
    """Attempt the optional registrations, once per process."""
    global _optional_probed
    if _optional_probed:
        return
    _optional_probed = True
    _register_numba()


def _register_numba() -> None:
    if "numba" in _REGISTRY:  # pragma: no cover - user pre-registered
        return
    try:
        from numba import njit, prange
    except Exception:  # pragma: no cover - exercised only sans numba
        return

    @njit(parallel=True, fastmath=False)
    def _interp3(g0, g1, g2, table, x0, x1, x2):  # pragma: no cover
        n = x0.shape[0]
        out = np.empty(n)
        for p in prange(n):
            wf = np.empty(3)
            ia = 0
            ib = 0
            ic = 0
            for axis in range(3):
                if axis == 0:
                    g, x = g0, x0[p]
                elif axis == 1:
                    g, x = g1, x1[p]
                else:
                    g, x = g2, x2[p]
                if x < g[0]:
                    x = g[0]
                elif x > g[-1]:
                    x = g[-1]
                i = np.searchsorted(g, x) - 1
                if i < 0:
                    i = 0
                elif i > g.shape[0] - 2:
                    i = g.shape[0] - 2
                wf[axis] = (x - g[i]) / (g[i + 1] - g[i])
                if axis == 0:
                    ia = i
                elif axis == 1:
                    ib = i
                else:
                    ic = i
            f0, f1, f2 = wf[0], wf[1], wf[2]
            acc = 0.0
            for b0 in range(2):
                w0 = f0 if b0 else 1.0 - f0
                for b1 in range(2):
                    w1 = f1 if b1 else 1.0 - f1
                    for b2 in range(2):
                        w2 = f2 if b2 else 1.0 - f2
                        acc += (
                            w0 * w1 * w2
                            * table[ia + b0, ib + b1, ic + b2]
                        )
            out[p] = acc
        return out

    def numba_factory(controller) -> FLCKernel:  # pragma: no cover
        lut = build_lut(controller)
        if len(lut.grids) != 3:
            raise ValueError(
                "the numba FLC kernel is specialised for 3-input "
                f"controllers, got {len(lut.grids)} inputs"
            )
        g0, g1, g2 = (np.ascontiguousarray(g) for g in lut.grids)
        table = np.ascontiguousarray(lut.table)

        def kernel(cols: Sequence[np.ndarray]) -> np.ndarray:
            x0, x1, x2 = (
                np.ascontiguousarray(c, dtype=np.float64) for c in cols
            )
            return _interp3(g0, g1, g2, table, x0, x1, x2)

        # same table as "lut": carry its per-table validated bound
        kernel.error_bound = lut.error_bound
        return kernel

    # same table as "lut": same documented bound vs the reference
    register_flc_backend("numba", numba_factory, error_bound=LUT_ERROR_BOUND)


register_flc_backend("reference", _reference_factory, error_bound=0.0)
register_flc_backend("lut", _lut_factory, error_bound=LUT_ERROR_BOUND)
