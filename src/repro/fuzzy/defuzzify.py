"""Defuzzification strategies.

Converts an aggregated output membership (or, for the weighted-average
family, per-term activations) into a crisp decision value.  The paper
does not name its defuzzifier; centre-of-gravity (centroid) is the
standard choice for Mamdani controllers of this era and is our default.
The others exist for the X2 ablation bench, which shows how the decision
surface — and hence where the 0.7 handover threshold bites — shifts
with the strategy.

All area-based defuzzifiers operate on a ``(n_samples, n_points)``
membership surface and return ``(n_samples,)`` crisp values, vectorised
across the batch dimension.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

__all__ = [
    "centroid",
    "bisector",
    "mean_of_maximum",
    "smallest_of_maximum",
    "largest_of_maximum",
    "weighted_average",
    "get_defuzzifier",
    "DEFUZZIFIERS",
]

DefuzzMethod = Literal["centroid", "bisector", "mom", "som", "lom"]

#: Relative tolerance used when locating the plateau of maxima.
_MAX_RTOL = 1e-9


def _validate_surface(grid: np.ndarray, surface: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    grid = np.asarray(grid, dtype=float)
    surface = np.asarray(surface, dtype=float)
    if grid.ndim != 1:
        raise ValueError(f"grid must be 1-D, got shape {grid.shape}")
    if surface.ndim == 1:
        surface = surface[None, :]
    if surface.ndim != 2 or surface.shape[1] != grid.shape[0]:
        raise ValueError(
            f"surface shape {surface.shape} incompatible with grid of "
            f"{grid.shape[0]} points"
        )
    if np.any(surface < -1e-12) or np.any(surface > 1.0 + 1e-9):
        raise ValueError("membership surface values must lie in [0, 1]")
    return grid, surface


def _fallback(grid: np.ndarray) -> float:
    """Crisp value when the surface is identically zero: the universe
    midpoint, the least-surprising neutral answer."""
    return 0.5 * float(grid[0] + grid[-1])


def centroid(grid: np.ndarray, surface: np.ndarray) -> np.ndarray:
    """Centre of gravity: ``∫ x·µ(x) dx / ∫ µ(x) dx`` (trapezoid rule)."""
    grid, surface = _validate_surface(grid, surface)
    area = np.trapezoid(surface, grid, axis=1)
    moment = np.trapezoid(surface * grid[None, :], grid, axis=1)
    out = np.full(surface.shape[0], _fallback(grid))
    nz = area > 0.0
    out[nz] = moment[nz] / area[nz]
    return out


def bisector(grid: np.ndarray, surface: np.ndarray) -> np.ndarray:
    """Abscissa splitting the area under µ into two equal halves."""
    grid, surface = _validate_surface(grid, surface)
    # cumulative trapezoid area along the grid
    dx = np.diff(grid)
    seg = 0.5 * (surface[:, 1:] + surface[:, :-1]) * dx[None, :]
    cum = np.concatenate(
        [np.zeros((surface.shape[0], 1)), np.cumsum(seg, axis=1)], axis=1
    )
    total = cum[:, -1]
    out = np.full(surface.shape[0], _fallback(grid))
    nz = total > 0.0
    if not np.any(nz):
        return out
    half = 0.5 * total[nz]
    # first grid index where cumulative area reaches half, then linearly
    # interpolate within that segment
    idx = np.argmax(cum[nz] >= half[:, None], axis=1)
    idx = np.clip(idx, 1, grid.shape[0] - 1)
    rows = np.arange(idx.shape[0])
    c_hi = cum[nz][rows, idx]
    c_lo = cum[nz][rows, idx - 1]
    g_hi = grid[idx]
    g_lo = grid[idx - 1]
    span = c_hi - c_lo
    frac = np.where(span > 0.0, (half - c_lo) / np.where(span > 0, span, 1.0), 0.0)
    out[nz] = g_lo + frac * (g_hi - g_lo)
    return out


def _max_plateau_stats(
    grid: np.ndarray, surface: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-row (max value, plateau mean, plateau min, plateau max)."""
    peak = surface.max(axis=1, keepdims=True)
    on_peak = surface >= peak * (1.0 - _MAX_RTOL) - 1e-15
    counts = on_peak.sum(axis=1)
    mean = (on_peak * grid[None, :]).sum(axis=1) / np.maximum(counts, 1)
    big = np.where(on_peak, grid[None, :], np.inf)
    small = np.where(on_peak, grid[None, :], -np.inf)
    return peak[:, 0], mean, big.min(axis=1), small.max(axis=1)


def mean_of_maximum(grid: np.ndarray, surface: np.ndarray) -> np.ndarray:
    """Mean abscissa of the maximal-membership plateau."""
    grid, surface = _validate_surface(grid, surface)
    peak, mean, _, _ = _max_plateau_stats(grid, surface)
    return np.where(peak > 0.0, mean, _fallback(grid))


def smallest_of_maximum(grid: np.ndarray, surface: np.ndarray) -> np.ndarray:
    """Leftmost abscissa attaining the maximum membership."""
    grid, surface = _validate_surface(grid, surface)
    peak, _, lo, _ = _max_plateau_stats(grid, surface)
    return np.where(peak > 0.0, lo, _fallback(grid))


def largest_of_maximum(grid: np.ndarray, surface: np.ndarray) -> np.ndarray:
    """Rightmost abscissa attaining the maximum membership."""
    grid, surface = _validate_surface(grid, surface)
    peak, _, _, hi = _max_plateau_stats(grid, surface)
    return np.where(peak > 0.0, hi, _fallback(grid))


def weighted_average(
    term_centroids: np.ndarray, term_activation: np.ndarray, fallback: float
) -> np.ndarray:
    """Sugeno-style weighted average of term centroids.

    Parameters
    ----------
    term_centroids:
        ``(n_terms,)`` centroid of each output term's membership function.
    term_activation:
        ``(n_terms, n_samples)`` per-term activations.
    fallback:
        Value returned for samples where no term fires at all.

    Notes
    -----
    This defuzzifier skips universe sampling entirely, which makes it the
    fastest option (no ``(N, P)`` surface) — the X5 bench quantifies the
    gap.  It is *not* identical to the centroid of the clipped union, but
    tracks it closely for Ruspini partitions.
    """
    c = np.asarray(term_centroids, dtype=float)
    a = np.asarray(term_activation, dtype=float)
    if a.ndim != 2 or a.shape[0] != c.shape[0]:
        raise ValueError(
            f"term_activation shape {a.shape} incompatible with "
            f"{c.shape[0]} term centroids"
        )
    total = a.sum(axis=0)
    out = np.full(a.shape[1], float(fallback))
    nz = total > 0.0
    # a convex combination of centroids lies inside their hull; enforce
    # that under floating point too (subnormal activations can round
    # the quotient past an endpoint, e.g. 0.8*5e-324/5e-324 == 1.0)
    out[nz] = np.clip(
        (c[:, None] * a).sum(axis=0)[nz] / total[nz], c.min(), c.max()
    )
    return out


DEFUZZIFIERS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "centroid": centroid,
    "bisector": bisector,
    "mom": mean_of_maximum,
    "som": smallest_of_maximum,
    "lom": largest_of_maximum,
}


def get_defuzzifier(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up an area-based defuzzifier by name.

    ``"wavg"`` is intentionally absent: the weighted average has a
    different signature (no universe sampling) and is selected via the
    controller's ``defuzzifier="wavg"`` fast path instead.
    """
    try:
        return DEFUZZIFIERS[name]
    except KeyError:
        raise ValueError(
            f"unknown defuzzifier {name!r}; available: "
            f"{', '.join(sorted(DEFUZZIFIERS))} (plus 'wavg' via the controller)"
        ) from None
