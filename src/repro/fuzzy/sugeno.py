"""Takagi–Sugeno–Kang (TSK) controller — alternative inference engine.

The paper uses a Mamdani controller; zero-order Sugeno is the other
classic choice for embedded/real-time fuzzy control (each rule outputs a
crisp constant, the controller a firing-strength-weighted average — no
output universe sampling at all).  Provided for the X8 ablation bench:
how much of the handover behaviour is the *rule base* and how much the
inference machinery?

:func:`sugeno_from_mamdani` converts a Mamdani rule base by replacing
each consequent fuzzy set with its centroid, which preserves the rule
semantics up to defuzzification and makes the two engines directly
comparable.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from .compiled import (
    DEFAULT_FLC_BACKEND,
    controller_kernel,
    resolve_flc_backend,
    validate_backend_pin,
    variables_fingerprint,
)
from .inference import AndMethod
from .rules import RuleBase
from .variables import LinguisticVariable

__all__ = ["SugenoController", "sugeno_from_mamdani"]


class SugenoController:
    """Zero-order TSK controller over crisp rule consequents.

    Parameters
    ----------
    input_variables:
        The fuzzifier variables, in rule order.
    rule_antecedents:
        ``(n_rules, n_inputs)`` integer term indices (as produced by
        :meth:`RuleBase.compile_indices`).
    rule_outputs:
        ``(n_rules,)`` crisp consequent values.
    and_method:
        ``"min"`` or ``"prod"`` conjunction.
    fallback:
        Output when no rule fires at all.
    backend:
        Inference-backend pin (``None`` = the
        :func:`~repro.fuzzy.compiled.resolve_flc_backend` policy), as
        on :class:`~repro.fuzzy.controller.FuzzyController`.
    """

    def __init__(
        self,
        input_variables: Sequence[LinguisticVariable],
        rule_antecedents: np.ndarray,
        rule_outputs: np.ndarray,
        and_method: AndMethod = "min",
        fallback: float = 0.0,
        backend: Optional[str] = None,
    ) -> None:
        self.input_variables = tuple(input_variables)
        ant = np.asarray(rule_antecedents, dtype=np.intp)
        out = np.asarray(rule_outputs, dtype=float)
        if ant.ndim != 2 or ant.shape[1] != len(self.input_variables):
            raise ValueError(
                f"rule_antecedents must be (n_rules, {len(self.input_variables)}), "
                f"got {ant.shape}"
            )
        if out.shape != (ant.shape[0],):
            raise ValueError(
                f"rule_outputs must be ({ant.shape[0]},), got {out.shape}"
            )
        for v, var in enumerate(self.input_variables):
            if ant[:, v].min() < 0 or ant[:, v].max() >= var.n_terms:
                raise ValueError(
                    f"rule antecedent term index out of range for {var.name}"
                )
        if and_method not in ("min", "prod"):
            raise ValueError(f"unknown and_method {and_method!r}")
        validate_backend_pin(backend)
        self._ant = ant
        self._out = out
        self.and_method = and_method
        self.fallback = float(fallback)
        self.backend = backend
        self._compiled: dict[str, object] = {}

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.input_variables)

    @property
    def n_rules(self) -> int:
        return self._ant.shape[0]

    # ------------------------------------------------------------------
    def _coerce_batch(
        self, inputs: Union[Mapping[str, np.ndarray], Sequence[np.ndarray]]
    ) -> list[np.ndarray]:
        if isinstance(inputs, Mapping):
            missing = set(self.input_names) - set(inputs)
            if missing:
                raise ValueError(f"missing input(s): {sorted(missing)}")
            cols = [np.atleast_1d(np.asarray(inputs[n], dtype=float))
                    for n in self.input_names]
        else:
            cols = [np.atleast_1d(np.asarray(c, dtype=float)) for c in inputs]
            if len(cols) != len(self.input_names):
                raise ValueError(
                    f"expected {len(self.input_names)} inputs, got {len(cols)}"
                )
        n = max(c.shape[0] for c in cols)
        return [np.full(n, c[0]) if c.shape[0] == 1 else c for c in cols]

    def _reference_batch(self, cols: Sequence[np.ndarray]) -> np.ndarray:
        """The exact TSK weighted-average pipeline on coerced columns —
        this controller's ``reference`` inference backend."""
        n = cols[0].shape[0]
        memberships = [
            var.membership_matrix(col)
            for var, col in zip(self.input_variables, cols)
        ]
        act = memberships[0][self._ant[:, 0], :]
        if self.and_method == "min":
            for v in range(1, len(memberships)):
                act = np.minimum(act, memberships[v][self._ant[:, v], :])
        else:
            act = act.copy()
            for v in range(1, len(memberships)):
                act *= memberships[v][self._ant[:, v], :]
        total = act.sum(axis=0)
        weighted = (act * self._out[:, None]).sum(axis=0)
        out = np.full(n, self.fallback)
        nz = total > 0.0
        out[nz] = weighted[nz] / total[nz]
        return out

    def _structural_key(self) -> tuple:
        """LUT-cache fingerprint (see ``FuzzyController._structural_key``)."""
        return (
            "sugeno",
            variables_fingerprint(self.input_variables),
            self._ant.tobytes(),
            self._out.tobytes(),
            self.and_method,
            self.fallback,
        )

    def evaluate_batch(
        self,
        inputs: Union[Mapping[str, np.ndarray], Sequence[np.ndarray]],
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Weighted-average TSK output for a batch of crisp inputs.

        ``backend`` overrides the inference backend for this call, as
        on :meth:`FuzzyController.evaluate_batch`.
        """
        cols = self._coerce_batch(inputs)
        name = resolve_flc_backend(
            self.backend if backend is None else backend
        )
        if name == DEFAULT_FLC_BACKEND:
            return self._reference_batch(cols)
        return controller_kernel(self, name)(cols)

    def evaluate(
        self, *args: float, backend: Optional[str] = None, **kwargs: float
    ) -> float:
        """Scalar evaluation (positional in rule order, or by name)."""
        if args and kwargs:
            raise TypeError("pass inputs either positionally or by name")
        if kwargs:
            batch = {k: np.array([float(v)]) for k, v in kwargs.items()}
            return float(self.evaluate_batch(batch, backend=backend)[0])
        if len(args) != len(self.input_names):
            raise TypeError(
                f"expected {len(self.input_names)} inputs, got {len(args)}"
            )
        return float(
            self.evaluate_batch(
                [np.array([a]) for a in args], backend=backend
            )[0]
        )

    def __repr__(self) -> str:
        return (
            f"SugenoController(inputs=[{', '.join(self.input_names)}], "
            f"rules={self.n_rules}, and={self.and_method!r})"
        )


def sugeno_from_mamdani(
    rule_base: RuleBase, and_method: AndMethod = "min"
) -> SugenoController:
    """Convert a Mamdani rule base to a zero-order TSK controller.

    Each rule's consequent fuzzy set is collapsed to its centroid; the
    fallback output is the output-universe midpoint (matching the
    Mamdani engines' empty-activation convention).
    """
    ant, con, _ = rule_base.compile_indices()
    centroids = np.array(
        [t.mf.centroid for t in rule_base.output_variable.terms]
    )
    lo, hi = rule_base.output_variable.universe
    return SugenoController(
        rule_base.input_variables,
        ant,
        centroids[con],
        and_method=and_method,
        fallback=0.5 * (lo + hi),
    )
