"""Fuzzy rules and rule bases.

The paper's controller uses a complete conjunctive rule base: every
combination of input terms maps to exactly one output term (Table 1,
64 rules of the form ``IF CSSP is SM AND SSN is WK AND DMB is NR THEN HD
is LO``).  This module provides:

* :class:`Rule` — one conjunctive IF/THEN rule with an optional weight;
* :class:`RuleBase` — an ordered rule collection bound to concrete input
  and output variables, with completeness / conflict auditing and the
  integer index tables the vectorised inference engine consumes;
* :func:`parse_rule` / :func:`parse_rules` — a small parser for the
  textual ``IF .. AND .. THEN ..`` syntax, so rule bases can live in
  plain-text fixtures.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .variables import LinguisticVariable

__all__ = ["Rule", "RuleBase", "parse_rule", "parse_rules", "RuleConflictError"]


class RuleConflictError(ValueError):
    """Raised when two rules share an antecedent but disagree on the
    consequent (and conflict checking is enabled)."""


@dataclass(frozen=True)
class Rule:
    """A conjunctive fuzzy rule.

    ``antecedent`` maps input-variable names to term names; ``consequent``
    is the output term name.  ``weight`` scales the rule's firing strength
    (1.0 for every paper rule; exposed for the ablation benches).
    """

    antecedent: Mapping[str, str]
    consequent: str
    weight: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.antecedent:
            raise ValueError("Rule: antecedent must name at least one variable")
        if not self.consequent:
            raise ValueError("Rule: consequent term must be non-empty")
        if not (0.0 < self.weight <= 1.0):
            raise ValueError(
                f"Rule: weight must be in (0, 1], got {self.weight}"
            )
        # freeze the mapping so Rule stays hashable/immutable
        object.__setattr__(self, "antecedent", dict(self.antecedent))

    def key(self, variable_order: Sequence[str]) -> tuple[str, ...]:
        """Antecedent term names in a fixed variable order."""
        return tuple(self.antecedent[v] for v in variable_order)

    def describe(self, output_name: str = "output") -> str:
        conds = " AND ".join(f"{v} is {t}" for v, t in self.antecedent.items())
        return f"IF {conds} THEN {output_name} is {self.consequent}"

    def __repr__(self) -> str:
        return f"Rule({self.describe()}, weight={self.weight:g})"


class RuleBase:
    """An ordered collection of rules bound to concrete variables.

    Parameters
    ----------
    input_variables:
        The controller's inputs, in evaluation order.
    output_variable:
        The controller's single output variable.
    rules:
        The rules.  Every rule must reference every input variable (the
        paper's rules are full conjunctions) and use only known term
        names.
    check_conflicts:
        If True (default), reject rule bases where two rules share an
        antecedent but map to different consequents.
    """

    def __init__(
        self,
        input_variables: Sequence[LinguisticVariable],
        output_variable: LinguisticVariable,
        rules: Iterable[Rule],
        check_conflicts: bool = True,
    ) -> None:
        self.input_variables = tuple(input_variables)
        if not self.input_variables:
            raise ValueError("RuleBase: at least one input variable required")
        names = [v.name for v in self.input_variables]
        if len(set(names)) != len(names):
            raise ValueError(f"RuleBase: duplicate input variable names {names}")
        self.output_variable = output_variable
        self.rules = tuple(rules)
        if not self.rules:
            raise ValueError("RuleBase: at least one rule required")
        self._validate(check_conflicts)

    # ------------------------------------------------------------------
    def _validate(self, check_conflicts: bool) -> None:
        var_names = [v.name for v in self.input_variables]
        seen: dict[tuple[str, ...], str] = {}
        for i, rule in enumerate(self.rules):
            missing = set(var_names) - set(rule.antecedent)
            if missing:
                raise ValueError(
                    f"rule #{i + 1} missing condition(s) for: {sorted(missing)}"
                )
            extra = set(rule.antecedent) - set(var_names)
            if extra:
                raise ValueError(
                    f"rule #{i + 1} references unknown variable(s): {sorted(extra)}"
                )
            for var in self.input_variables:
                t = rule.antecedent[var.name]
                if t not in var:
                    raise ValueError(
                        f"rule #{i + 1}: variable {var.name!r} has no term {t!r}"
                    )
            if rule.consequent not in self.output_variable:
                raise ValueError(
                    f"rule #{i + 1}: output variable "
                    f"{self.output_variable.name!r} has no term "
                    f"{rule.consequent!r}"
                )
            key = rule.key(var_names)
            if check_conflicts and key in seen and seen[key] != rule.consequent:
                raise RuleConflictError(
                    f"rule #{i + 1} conflicts with an earlier rule: antecedent "
                    f"{dict(zip(var_names, key))} maps to both "
                    f"{seen[key]!r} and {rule.consequent!r}"
                )
            seen.setdefault(key, rule.consequent)

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.input_variables)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def missing_combinations(self) -> list[tuple[str, ...]]:
        """Antecedent combinations with no rule.

        A *complete* rule base (like the paper's Table 1) returns ``[]``.
        """
        covered = {r.key(self.variable_names) for r in self.rules}
        all_combos = itertools.product(
            *(v.term_names for v in self.input_variables)
        )
        return [c for c in all_combos if c not in covered]

    def is_complete(self) -> bool:
        return not self.missing_combinations()

    def consequent_histogram(self) -> dict[str, int]:
        """Count of rules per output term (diagnostic)."""
        hist = {t: 0 for t in self.output_variable.term_names}
        for r in self.rules:
            hist[r.consequent] += 1
        return hist

    def lookup(self, **terms: str) -> Rule:
        """Find the rule with the given antecedent terms.

        Example: ``frb.lookup(CSSP="SM", SSN="WK", DMB="NR")``.
        """
        key = tuple(terms[v] for v in self.variable_names)
        for r in self.rules:
            if r.key(self.variable_names) == key:
                return r
        raise KeyError(f"no rule for antecedent {terms}")

    # ------------------------------------------------------------------
    # compiled form for the vectorised inference engine
    # ------------------------------------------------------------------
    def compile_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integer index tables for vectorised activation.

        Returns
        -------
        antecedent_idx:
            ``(n_rules, n_inputs)`` int array; entry ``[r, v]`` is the
            term index of rule ``r`` for input variable ``v``.
        consequent_idx:
            ``(n_rules,)`` int array of output-term indices.
        weights:
            ``(n_rules,)`` float array of rule weights.
        """
        n_rules = len(self.rules)
        n_inputs = len(self.input_variables)
        ant = np.empty((n_rules, n_inputs), dtype=np.intp)
        con = np.empty(n_rules, dtype=np.intp)
        w = np.empty(n_rules, dtype=float)
        for r, rule in enumerate(self.rules):
            for v, var in enumerate(self.input_variables):
                ant[r, v] = var.term_index(rule.antecedent[var.name])
            con[r] = self.output_variable.term_index(rule.consequent)
            w[r] = rule.weight
        return ant, con, w

    def __repr__(self) -> str:
        return (
            f"RuleBase(inputs=[{', '.join(self.variable_names)}], "
            f"output={self.output_variable.name!r}, n_rules={len(self.rules)})"
        )


_RULE_RE = re.compile(
    r"^\s*IF\s+(?P<conds>.+?)\s+THEN\s+(?P<out>\w+)\s+is\s+(?P<cons>\w+)\s*"
    r"(?:\[\s*weight\s*=\s*(?P<weight>[0-9.]+)\s*\])?\s*$",
    re.IGNORECASE,
)
_COND_RE = re.compile(r"^\s*(?P<var>\w+)\s+is\s+(?P<term>\w+)\s*$", re.IGNORECASE)


def parse_rule(text: str, output_name: str | None = None) -> Rule:
    """Parse one ``IF a is X AND b is Y THEN out is Z [weight=w]`` rule.

    ``output_name``, when given, is checked against the THEN clause so a
    typo in a fixture file fails loudly.
    """
    m = _RULE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable rule: {text!r}")
    conds: dict[str, str] = {}
    for chunk in re.split(r"\s+AND\s+", m.group("conds"), flags=re.IGNORECASE):
        cm = _COND_RE.match(chunk)
        if not cm:
            raise ValueError(f"unparseable condition {chunk!r} in rule {text!r}")
        var = cm.group("var")
        if var in conds:
            raise ValueError(f"duplicate condition for {var!r} in rule {text!r}")
        conds[var] = cm.group("term")
    if output_name is not None and m.group("out") != output_name:
        raise ValueError(
            f"rule output {m.group('out')!r} does not match expected "
            f"{output_name!r}: {text!r}"
        )
    weight = float(m.group("weight")) if m.group("weight") else 1.0
    return Rule(conds, m.group("cons"), weight=weight)


def parse_rules(lines: Iterable[str], output_name: str | None = None) -> list[Rule]:
    """Parse many rules; blank lines and ``#`` comments are skipped."""
    rules: list[Rule] = []
    for ln in lines:
        stripped = ln.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, output_name=output_name))
    return rules
