"""Membership functions for the fuzzy-logic engine.

The paper (Fig. 3) restricts itself to *triangular* and *trapezoidal*
membership functions because "they are suitable for real-time operation".
This module implements those two shapes — including the paper's own
``f(x; x0, a0, a1)`` / ``g(x; x0, x1, a0, a1)`` centre-and-width
parametrisation — plus the shoulder variants needed at the edges of a
universe of discourse, and a few extras (Gaussian, singleton) used by the
ablation benchmarks.

All membership functions are callable on scalars **and** on NumPy arrays;
array evaluation is fully vectorised (no Python-level loop per sample),
which is what makes the batch inference path in
:mod:`repro.fuzzy.controller` fast.

Design invariants (enforced by the constructors and covered by the
property-based tests):

* membership grades always lie in ``[0, 1]``;
* the *core* (grade == 1 region) is non-empty for every shape;
* the *support* is a bounded interval except for shoulder functions,
  which are intentionally unbounded on one side so that inputs beyond the
  universe edge saturate instead of falling to zero membership.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

__all__ = [
    "MembershipFunction",
    "Triangular",
    "Trapezoidal",
    "LeftShoulder",
    "RightShoulder",
    "Gaussian",
    "Singleton",
    "paper_triangle",
    "paper_trapezoid",
]

ArrayLike = Union[float, int, np.ndarray]


class MembershipFunction(ABC):
    """Abstract base class for a fuzzy membership function.

    Subclasses implement :meth:`evaluate` on NumPy arrays; ``__call__``
    accepts scalars or arrays and preserves the input kind (a Python float
    in → a Python float out, an array in → an array out).
    """

    @abstractmethod
    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Vectorised membership grade for an array of crisp inputs."""

    @property
    @abstractmethod
    def core(self) -> tuple[float, float]:
        """Closed interval on which the grade equals 1."""

    @property
    @abstractmethod
    def support(self) -> tuple[float, float]:
        """Interval outside of which the grade is 0.

        Shoulder functions return ``-inf`` / ``+inf`` on their saturated
        side.
        """

    @property
    def centroid(self) -> float:
        """Centroid (centre of gravity) of the membership function.

        Used by the weighted-average defuzzifier.  The default
        implementation integrates numerically over the support (clipped to
        a finite window for shoulders); analytic subclasses override it.
        """
        lo, hi = self.support
        if not math.isfinite(lo):
            lo = self.core[0] - 1.0
        if not math.isfinite(hi):
            hi = self.core[1] + 1.0
        xs = np.linspace(lo, hi, 1001)
        mu = self.evaluate(xs)
        total = float(np.trapezoid(mu, xs))
        if total <= 0.0:
            return 0.5 * (lo + hi)
        return float(np.trapezoid(mu * xs, xs) / total)

    def __call__(self, x: ArrayLike) -> ArrayLike:
        arr = np.asarray(x, dtype=float)
        out = self.evaluate(arr)
        if np.isscalar(x) or (isinstance(x, np.ndarray) and x.ndim == 0):
            return float(out)
        return out

    def grade(self, x: ArrayLike) -> ArrayLike:
        """Alias of :meth:`__call__` for readability at call sites."""
        return self(x)


def _validate_ordered(name: str, *points: float) -> None:
    for p in points:
        if not math.isfinite(p):
            raise ValueError(f"{name}: break points must be finite, got {points}")
    for lo, hi in zip(points, points[1:]):
        if lo > hi:
            raise ValueError(
                f"{name}: break points must be non-decreasing, got {points}"
            )


class Triangular(MembershipFunction):
    """Triangular membership function with feet ``a``/``c`` and peak ``b``.

    Degenerate feet (``a == b`` or ``b == c``) are allowed and produce a
    one-sided ramp; ``a == b == c`` is rejected (use :class:`Singleton`).
    """

    __slots__ = ("a", "b", "c")

    def __init__(self, a: float, b: float, c: float) -> None:
        _validate_ordered("Triangular", a, b, c)
        if a == c:
            raise ValueError(
                "Triangular: zero-width triangle (a == b == c); use Singleton"
            )
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        # np.where evaluates the ramp expression on masked-out samples
        # too; suppress the harmless overflow for extreme |x|
        with np.errstate(over="ignore", invalid="ignore"):
            if self.b > self.a:
                rising = (x > self.a) & (x < self.b)
                out = np.where(rising, (x - self.a) / (self.b - self.a), out)
            if self.c > self.b:
                falling = (x >= self.b) & (x < self.c)
                out = np.where(falling, (self.c - x) / (self.c - self.b), out)
        out = np.where(x == self.b, 1.0, out)
        return out

    @property
    def core(self) -> tuple[float, float]:
        return (self.b, self.b)

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.c)

    @property
    def centroid(self) -> float:
        return (self.a + self.b + self.c) / 3.0

    def __repr__(self) -> str:
        return f"Triangular(a={self.a:g}, b={self.b:g}, c={self.c:g})"


class Trapezoidal(MembershipFunction):
    """Trapezoidal membership function with shoulder plateau ``[b, c]``."""

    __slots__ = ("a", "b", "c", "d")

    def __init__(self, a: float, b: float, c: float, d: float) -> None:
        _validate_ordered("Trapezoidal", a, b, c, d)
        if a == d:
            raise ValueError("Trapezoidal: zero-width trapezoid; use Singleton")
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)
        self.d = float(d)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        with np.errstate(over="ignore", invalid="ignore"):
            if self.b > self.a:
                rising = (x > self.a) & (x < self.b)
                out = np.where(rising, (x - self.a) / (self.b - self.a), out)
            if self.d > self.c:
                falling = (x > self.c) & (x < self.d)
                out = np.where(falling, (self.d - x) / (self.d - self.c), out)
        plateau = (x >= self.b) & (x <= self.c)
        out = np.where(plateau, 1.0, out)
        return out

    @property
    def core(self) -> tuple[float, float]:
        return (self.b, self.c)

    @property
    def support(self) -> tuple[float, float]:
        return (self.a, self.d)

    @property
    def centroid(self) -> float:
        # Analytic centroid of a trapezoid via decomposition into the two
        # ramp triangles and the central rectangle.
        a, b, c, d = self.a, self.b, self.c, self.d
        pieces: list[tuple[float, float]] = []  # (area, centroid)
        if b > a:
            pieces.append((0.5 * (b - a), a + 2.0 * (b - a) / 3.0))
        if c > b:
            pieces.append((c - b, 0.5 * (b + c)))
        if d > c:
            pieces.append((0.5 * (d - c), c + (d - c) / 3.0))
        area = sum(p[0] for p in pieces)
        if area <= 0.0:
            return 0.5 * (a + d)
        return sum(p[0] * p[1] for p in pieces) / area

    def __repr__(self) -> str:
        return (
            f"Trapezoidal(a={self.a:g}, b={self.b:g}, c={self.c:g}, d={self.d:g})"
        )


class LeftShoulder(MembershipFunction):
    """Saturated-left membership: grade 1 for ``x <= shoulder``, ramping
    to 0 at ``foot``.

    Used for the leftmost term of a linguistic variable so that inputs
    below the universe edge keep full membership instead of dropping out
    of every fuzzy set.
    """

    __slots__ = ("shoulder", "foot")

    def __init__(self, shoulder: float, foot: float) -> None:
        _validate_ordered("LeftShoulder", shoulder, foot)
        if shoulder == foot:
            raise ValueError("LeftShoulder: shoulder and foot must differ")
        self.shoulder = float(shoulder)
        self.foot = float(foot)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.clip((self.foot - x) / (self.foot - self.shoulder), 0.0, 1.0)
        return out

    @property
    def core(self) -> tuple[float, float]:
        return (-math.inf, self.shoulder)

    @property
    def support(self) -> tuple[float, float]:
        return (-math.inf, self.foot)

    @property
    def centroid(self) -> float:
        # Integrated over the *finite* sloped part plus one ramp-width of
        # plateau, which is the convention used for defuzzifying edge terms
        # on a clipped universe.
        width = self.foot - self.shoulder
        lo = self.shoulder - width
        xs = np.linspace(lo, self.foot, 513)
        mu = self.evaluate(xs)
        total = float(np.trapezoid(mu, xs))
        return float(np.trapezoid(mu * xs, xs) / total)

    def __repr__(self) -> str:
        return f"LeftShoulder(shoulder={self.shoulder:g}, foot={self.foot:g})"


class RightShoulder(MembershipFunction):
    """Saturated-right membership: grade 0 up to ``foot``, 1 from
    ``shoulder`` onwards."""

    __slots__ = ("foot", "shoulder")

    def __init__(self, foot: float, shoulder: float) -> None:
        _validate_ordered("RightShoulder", foot, shoulder)
        if foot == shoulder:
            raise ValueError("RightShoulder: foot and shoulder must differ")
        self.foot = float(foot)
        self.shoulder = float(shoulder)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.foot) / (self.shoulder - self.foot), 0.0, 1.0)
        return out

    @property
    def core(self) -> tuple[float, float]:
        return (self.shoulder, math.inf)

    @property
    def support(self) -> tuple[float, float]:
        return (self.foot, math.inf)

    @property
    def centroid(self) -> float:
        width = self.shoulder - self.foot
        hi = self.shoulder + width
        xs = np.linspace(self.foot, hi, 513)
        mu = self.evaluate(xs)
        total = float(np.trapezoid(mu, xs))
        return float(np.trapezoid(mu * xs, xs) / total)

    def __repr__(self) -> str:
        return f"RightShoulder(foot={self.foot:g}, shoulder={self.shoulder:g})"


class Gaussian(MembershipFunction):
    """Gaussian membership ``exp(-(x - mean)^2 / (2 sigma^2))``.

    Not used by the paper's controller; provided for the membership-shape
    ablation benchmark (X-series) and as a general-purpose building block.
    """

    __slots__ = ("mean", "sigma")

    #: Grade below which the Gaussian is treated as zero when reporting a
    #: (mathematically unbounded) support interval.
    SUPPORT_EPS = 1e-6

    def __init__(self, mean: float, sigma: float) -> None:
        if not math.isfinite(mean) or not math.isfinite(sigma):
            raise ValueError("Gaussian: parameters must be finite")
        if sigma <= 0:
            raise ValueError(f"Gaussian: sigma must be positive, got {sigma}")
        self.mean = float(mean)
        self.sigma = float(sigma)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        z = (x - self.mean) / self.sigma
        return np.exp(-0.5 * z * z)

    @property
    def core(self) -> tuple[float, float]:
        return (self.mean, self.mean)

    @property
    def support(self) -> tuple[float, float]:
        half = self.sigma * math.sqrt(-2.0 * math.log(self.SUPPORT_EPS))
        return (self.mean - half, self.mean + half)

    @property
    def centroid(self) -> float:
        return self.mean

    def __repr__(self) -> str:
        return f"Gaussian(mean={self.mean:g}, sigma={self.sigma:g})"


class Singleton(MembershipFunction):
    """Crisp singleton: grade 1 exactly at ``value`` and 0 elsewhere."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError("Singleton: value must be finite")
        self.value = float(value)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.where(x == self.value, 1.0, 0.0)

    @property
    def core(self) -> tuple[float, float]:
        return (self.value, self.value)

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)

    @property
    def centroid(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Singleton(value={self.value:g})"


def paper_triangle(x0: float, a0: float, a1: float) -> Triangular:
    """Build a triangle in the paper's Fig. 3 parametrisation.

    ``x0`` is the centre, ``a0`` the left width and ``a1`` the right
    width, i.e. the function rises from ``x0 - a0`` to 1 at ``x0`` and
    falls back to 0 at ``x0 + a1``.
    """
    if a0 < 0 or a1 < 0:
        raise ValueError(f"paper_triangle: widths must be >= 0, got {a0}, {a1}")
    return Triangular(x0 - a0, x0, x0 + a1)


def paper_trapezoid(x0: float, x1: float, a0: float, a1: float) -> Trapezoidal:
    """Build a trapezoid in the paper's Fig. 3 parametrisation.

    ``x0``/``x1`` are the left/right edges of the plateau; ``a0``/``a1``
    the left/right ramp widths.
    """
    if a0 < 0 or a1 < 0:
        raise ValueError(f"paper_trapezoid: widths must be >= 0, got {a0}, {a1}")
    if x1 < x0:
        raise ValueError(f"paper_trapezoid: x1 must be >= x0, got {x0}, {x1}")
    return Trapezoidal(x0 - a0, x0, x1, x1 + a1)
