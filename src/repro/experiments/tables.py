"""Generators for the paper's tables.

* :func:`table_1` — the FRB (static, audited);
* :func:`table_2` — the simulation parameter sheet;
* :func:`table_3` — measurement-point outputs for the ping-pong walk
  (``iseed = 100`` analogue) over the 0–50 km/h speed sweep;
* :func:`table_4` — the same for the crossing walk (``iseed = 200``).

Tables 3/4 follow the paper's protocol: at each of the three boundary
measurement points, two samples (one epoch each side of the crossing)
of the FLC inputs — serving-signal change (CSSP), speed-penalised
neighbour strength, distance to the serving BS — and the defuzzified
system output.  With shadow fading enabled the table averages
``n_repetitions`` runs (the paper's "10 times simulations"); with the
deterministic default the single run *is* the average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.flc import HANDOVER_THRESHOLD
from ..core.frb import PAPER_FRB
from ..core.system import FuzzyHandoverSystem
from ..radio.fading import speed_penalty_db
from ..sim.config import PAPER_SPEEDS_KMH, SimulationParameters
from ..sim.engine import Simulator
from ..sim.measurement import MeasurementSampler, MeasurementSeries
from .scenarios import (
    SCENARIO_CROSSING,
    SCENARIO_PINGPONG,
    WalkScenario,
    measurement_point_epochs,
)

__all__ = [
    "table_1",
    "table_2",
    "MeasurementPointSample",
    "SpeedRow",
    "PointTable",
    "table_3",
    "table_4",
    "scenario_table",
]

Cell = tuple[int, int]


def table_1() -> str:
    """Render the 64-rule FRB in the paper's two-column layout."""
    header = f"{'Rule':>4}  {'CSSP':<4} {'SSN':<4} {'DMB':<4} {'HD':<3}"
    lines = [header + "    " + header]
    for k in range(32):
        left = PAPER_FRB[k]
        right = PAPER_FRB[k + 32]
        lines.append(
            f"{k + 1:>4}  {left[0]:<4} {left[1]:<4} {left[2]:<4} {left[3]:<3}"
            "    "
            f"{k + 33:>4}  {right[0]:<4} {right[1]:<4} {right[2]:<4} {right[3]:<3}"
        )
    return "\n".join(lines)


def table_2(params: Optional[SimulationParameters] = None) -> str:
    """Render the Table-2 parameter sheet."""
    if params is None:
        params = SimulationParameters()
    return params.describe()


@dataclass(frozen=True)
class MeasurementPointSample:
    """One sample (one epoch) at one measurement point."""

    epoch: int
    cssp_db: float
    neighbor_dbw: float
    distance_km: float
    output: float


@dataclass(frozen=True)
class SpeedRow:
    """Table 3/4 block for one MS speed: 3 points × 2 samples."""

    speed_kmh: float
    points: tuple[tuple[MeasurementPointSample, ...], ...]
    n_handovers: int
    n_ping_pongs: int

    def outputs(self) -> np.ndarray:
        """All system-output values of this speed block, flattened."""
        return np.array(
            [s.output for pt in self.points for s in pt], dtype=float
        )


@dataclass(frozen=True)
class PointTable:
    """A full Table-3/4 analogue."""

    scenario: WalkScenario
    rows: tuple[SpeedRow, ...]
    threshold: float
    expected_handovers: int

    def max_output(self) -> float:
        return float(max(r.outputs().max() for r in self.rows))

    def all_below_threshold(self) -> bool:
        """Table-3 success criterion: no measurement ever warrants a
        handover."""
        return bool(all((r.outputs() <= self.threshold).all() for r in self.rows))

    def handovers_by_speed(self) -> dict[float, int]:
        return {r.speed_kmh: r.n_handovers for r in self.rows}

    def render(self) -> str:
        n_points = len(self.rows[0].points) if self.rows else 0
        header_cells = "".join(
            f"{'Point ' + str(i + 1):^18}" for i in range(n_points)
        )
        lines = [
            f"Scenario: {self.scenario.name} "
            f"(paper iseed={self.scenario.paper_iseed}, frozen seed="
            f"{self.scenario.seed})",
            f"{'Measurement Points':<22}{header_cells}",
        ]
        for row in self.rows:
            lines.append(
                f"Speed {row.speed_kmh:g} km/h"
                f"    [handovers: {row.n_handovers}, "
                f"ping-pongs: {row.n_ping_pongs}]"
            )
            for label, attr, fmt in (
                ("CSSP BS", "cssp_db", "{:8.3f}"),
                ("Neighbor BS", "neighbor_dbw", "{:8.2f}"),
                ("Distance", "distance_km", "{:8.4f}"),
                ("System Output Value", "output", "{:8.3f}"),
            ):
                cells = "".join(
                    " ".join(
                        fmt.format(getattr(s, attr)) for s in pt
                    ).center(18)
                    for pt in row.points
                )
                lines.append(f"  {label:<20}{cells}")
        return "\n".join(lines)


def _resolve_point_epochs(
    point_epochs: list[list[int]],
    handover_steps: list[int],
    n_epochs: int,
) -> list[list[int]]:
    """Snap each point's last sample to the handover decision epoch.

    The paper's Table 4 prints the *decision* measurements — the second
    sub-column of each point is the sample whose output exceeded 0.7.
    When the simulated pipeline executed a handover near a crossing, the
    point's "after" sample is therefore taken at that decision epoch;
    otherwise the geometric ``crossing + offset`` epoch stands.
    """
    out: list[list[int]] = []
    for i, epochs in enumerate(point_epochs):
        lo = epochs[0]
        hi = point_epochs[i + 1][0] if i + 1 < len(point_epochs) else n_epochs
        matching = [s for s in handover_steps if lo <= s < hi]
        if matching:
            epochs = list(epochs[:-1]) + [min(matching[0], n_epochs - 1)]
        out.append(list(epochs))
    return out


def _point_samples(
    series: MeasurementSeries,
    serving_history: tuple[Cell, ...],
    speed_kmh: float,
    flc,
    cell_radius_km: float,
    point_epochs: list[list[int]],
) -> tuple[tuple[MeasurementPointSample, ...], ...]:
    """FLC inputs and outputs at the measurement-point epochs.

    The serving cell at each epoch is taken from the simulated pipeline
    (so Table 4's later points are evaluated from the already-handed-
    over cell, as in the paper), and CSSP is the change of that cell's
    signal since the previous epoch.
    """
    layout = series.layout
    out: list[tuple[MeasurementPointSample, ...]] = []
    penalty = float(speed_penalty_db(speed_kmh))
    for epochs in point_epochs:
        samples: list[MeasurementPointSample] = []
        for e in epochs:
            serving = serving_history[e - 1]
            s_idx = layout.index_of(serving)
            cssp = float(
                series.power_dbw[e, s_idx] - series.power_dbw[e - 1, s_idx]
            )
            neigh = layout.neighbors_of(serving)
            n_idx = [layout.index_of(c) for c in neigh]
            best_raw = float(series.power_dbw[e, n_idx].max())
            ssn = best_raw - penalty
            pos = series.positions_km[e]
            dist = float(np.hypot(*(pos - layout.bs_positions[s_idx])))
            output = float(
                flc.evaluate(
                    CSSP=cssp, SSN=ssn, DMB=dist / cell_radius_km
                )
            )
            samples.append(
                MeasurementPointSample(
                    epoch=e,
                    cssp_db=cssp,
                    neighbor_dbw=ssn,
                    distance_km=dist,
                    output=output,
                )
            )
        out.append(tuple(samples))
    return tuple(out)


def scenario_table(
    scenario: WalkScenario,
    params: Optional[SimulationParameters] = None,
    speeds_kmh: tuple[float, ...] = PAPER_SPEEDS_KMH,
    expected_handovers: int = 0,
) -> PointTable:
    """Build a Table-3/4 analogue for a scenario.

    With ``params.shadow_sigma_db > 0`` the per-sample quantities are
    averaged over ``params.n_repetitions`` fading draws; the handover
    counts are taken from the *first* repetition (the paper reports a
    single integer per speed).
    """
    if params is None:
        params = SimulationParameters()
    layout = params.make_layout()
    propagation = params.make_propagation()
    trace = scenario.generate(params)
    reps = params.n_repetitions if params.shadow_sigma_db > 0.0 else 1

    # the measurement-point geometry is defined on the noise-free series
    # so every fading repetition samples the same epochs
    clean_sampler = MeasurementSampler(
        layout, propagation, spacing_km=params.measurement_spacing_km
    )
    clean_series = clean_sampler.measure(trace)
    base_epochs = measurement_point_epochs(clean_series)

    rows: list[SpeedRow] = []
    for speed in speeds_kmh:
        acc: Optional[list[list[dict[str, float]]]] = None
        n_handovers = 0
        n_ping_pongs = 0
        point_epochs = base_epochs
        for rep in range(reps):
            fading = None
            if params.shadow_sigma_db > 0.0:
                fading = params.make_fading(rng=scenario.seed * 1000 + rep)
            sampler = MeasurementSampler(
                layout,
                propagation,
                spacing_km=params.measurement_spacing_km,
                fading=fading,
            )
            series = sampler.measure(trace)
            policy = FuzzyHandoverSystem(cell_radius_km=params.cell_radius_km)
            result = Simulator(policy, speed_kmh=speed).run(series)
            if rep == 0:
                from ..sim.metrics import count_ping_pongs

                n_handovers = result.n_handovers
                n_ping_pongs = count_ping_pongs(result.events)
                point_epochs = _resolve_point_epochs(
                    base_epochs,
                    [e.step for e in result.events],
                    series.n_epochs,
                )
            pts = _point_samples(
                series,
                result.serving_history,
                speed,
                policy.flc,
                params.cell_radius_km,
                point_epochs,
            )
            if acc is None:
                acc = [
                    [
                        {
                            "epoch": s.epoch,
                            "cssp_db": s.cssp_db,
                            "neighbor_dbw": s.neighbor_dbw,
                            "distance_km": s.distance_km,
                            "output": s.output,
                        }
                        for s in pt
                    ]
                    for pt in pts
                ]
            else:
                for pi, pt in enumerate(pts):
                    for si, s in enumerate(pt):
                        a = acc[pi][si]
                        a["cssp_db"] += s.cssp_db
                        a["neighbor_dbw"] += s.neighbor_dbw
                        a["distance_km"] += s.distance_km
                        a["output"] += s.output
        assert acc is not None
        averaged = tuple(
            tuple(
                MeasurementPointSample(
                    epoch=int(a["epoch"]),
                    cssp_db=a["cssp_db"] / reps,
                    neighbor_dbw=a["neighbor_dbw"] / reps,
                    distance_km=a["distance_km"] / reps,
                    output=a["output"] / reps,
                )
                for a in pt
            )
            for pt in acc
        )
        rows.append(
            SpeedRow(
                speed_kmh=speed,
                points=averaged,
                n_handovers=n_handovers,
                n_ping_pongs=n_ping_pongs,
            )
        )
    return PointTable(
        scenario=scenario,
        rows=tuple(rows),
        threshold=HANDOVER_THRESHOLD,
        expected_handovers=expected_handovers,
    )


def table_3(params: Optional[SimulationParameters] = None) -> PointTable:
    """Table-3 analogue: the ping-pong walk.

    Success shape: zero handovers at every speed (all measurement-point
    outputs at or below the 0.7 threshold, or cancelled by the PRTLC).
    """
    return scenario_table(SCENARIO_PINGPONG, params, expected_handovers=0)


def table_4(params: Optional[SimulationParameters] = None) -> PointTable:
    """Table-4 analogue: the crossing walk.

    Success shape: three handovers (one per boundary crossing) with no
    ping-pong.  See EXPERIMENTS.md for the speed-sweep discussion — the
    paper's printed FRB suppresses the 2nd/3rd handover at high speeds
    once the 2 dB / 10 km/h penalty pushes the neighbour out of the
    "Normal" band.
    """
    return scenario_table(SCENARIO_CROSSING, params, expected_handovers=3)
