"""Frozen walk scenarios — the paper's ``iseed = 100/200`` analogues.

The paper's seeds refer to the authors' unpublished RNG, so we searched
NumPy seeds (:mod:`repro.mobility.seedsearch`) for walks whose
deduplicated cell-visit sequences match the paper *exactly*:

* :data:`SCENARIO_PINGPONG` (``iseed=100`` role, Fig. 7): seed **555**,
  5 legs, visits ``(0,0) → (2,-1) → (0,0) → (1,-2)`` — the MS skirts
  the boundary and returns; a conventional strongest-BS policy
  ping-pongs here, the fuzzy system must not hand over at all.
* :data:`SCENARIO_CROSSING` (``iseed=200`` role, Fig. 8): seed **487**,
  10 legs, visits ``(0,0) → (-1,2) → (-2,1) → (-1,2)`` — three genuine
  boundary crossings; the fuzzy system must hand over three times.

Both sequences are verbatim the ones printed in the paper's Sec. 5.
The seeds are frozen here (rather than re-searched at run time) so that
every experiment, test and benchmark sees bit-identical walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility.base import Trace
from ..mobility.seedsearch import cell_sequence_of
from ..sim.config import SimulationParameters
from ..sim.measurement import MeasurementSeries

__all__ = [
    "WalkScenario",
    "SCENARIO_PINGPONG",
    "SCENARIO_CROSSING",
    "make_trace",
    "crossing_epochs",
    "measurement_point_epochs",
]

Cell = tuple[int, int]


@dataclass(frozen=True)
class WalkScenario:
    """A reproducible walk with a known relationship to the layout."""

    name: str
    paper_iseed: int
    seed: int
    n_walks: int
    expected_sequence: tuple[Cell, ...]
    description: str

    def generate(self, params: SimulationParameters) -> Trace:
        """The frozen walk under the given physical configuration."""
        return params.make_walk(self.n_walks).generate_seeded(self.seed)

    def verify_sequence(self, params: SimulationParameters) -> bool:
        """Check the frozen seed still produces the expected cells
        (guards against accidental changes to the walk model)."""
        layout = params.make_layout()
        seq = cell_sequence_of(self.generate(params), layout)
        return tuple(seq) == self.expected_sequence


SCENARIO_PINGPONG = WalkScenario(
    name="pingpong-walk",
    paper_iseed=100,
    seed=555,
    n_walks=5,
    expected_sequence=((0, 0), (2, -1), (0, 0), (1, -2)),
    description=(
        "Fig. 7 analogue: boundary-hugging walk; handover would cause "
        "the ping-pong effect, the fuzzy system must hold the MS on (0,0)."
    ),
)

SCENARIO_CROSSING = WalkScenario(
    name="crossing-walk",
    paper_iseed=200,
    seed=487,
    n_walks=10,
    expected_sequence=((0, 0), (-1, 2), (-2, 1), (-1, 2)),
    description=(
        "Fig. 8 analogue: the MS marches through neighbouring cells; "
        "three handovers are necessary and must all be executed."
    ),
)


def make_trace(
    scenario: WalkScenario, params: SimulationParameters | None = None
) -> Trace:
    """Convenience: the scenario's trace under (default) paper params."""
    if params is None:
        params = SimulationParameters()
    return scenario.generate(params)


def crossing_epochs(series: MeasurementSeries) -> list[int]:
    """Epoch indices where the geometrically strongest BS changes.

    These are the walk's true boundary crossings — the paper's
    "measurement points" where the MS "is in the boundary of the
    3 cells".
    """
    strongest = series.strongest_cell_indices()
    return [int(k) + 1 for k in np.nonzero(np.diff(strongest) != 0)[0]]


def measurement_point_epochs(
    series: MeasurementSeries, samples_per_point: int = 2, offset: int = 2
) -> list[list[int]]:
    """The paper's measurement-point sampling: per boundary crossing,
    ``samples_per_point`` epochs straddling the crossing.

    With the default ``offset=2`` and two samples, each point yields the
    epoch ``offset`` before and ``offset`` after the crossing (clipped
    to the series), mirroring the two sub-columns per point of
    Tables 3/4.
    """
    if samples_per_point < 1:
        raise ValueError(
            f"samples_per_point must be >= 1, got {samples_per_point}"
        )
    if offset < 1:
        raise ValueError(f"offset must be >= 1, got {offset}")
    points: list[list[int]] = []
    for c in crossing_epochs(series):
        epochs: list[int] = []
        if samples_per_point == 1:
            epochs = [c]
        else:
            half = samples_per_point // 2
            before = [c - offset * (i + 1) for i in range(half)][::-1]
            after = [c + offset * (i + 1) for i in range(samples_per_point - half)]
            epochs = before + after
        epochs = [min(max(e, 1), series.n_epochs - 1) for e in epochs]
        points.append(epochs)
    return points
