"""Frozen walk scenarios — the paper's ``iseed = 100/200`` analogues.

The paper's seeds refer to the authors' unpublished RNG, so we searched
NumPy seeds (:mod:`repro.mobility.seedsearch`) for walks whose
deduplicated cell-visit sequences match the paper *exactly*:

* :data:`SCENARIO_PINGPONG` (``iseed=100`` role, Fig. 7): seed **555**,
  5 legs, visits ``(0,0) → (2,-1) → (0,0) → (1,-2)`` — the MS skirts
  the boundary and returns; a conventional strongest-BS policy
  ping-pongs here, the fuzzy system must not hand over at all.
* :data:`SCENARIO_CROSSING` (``iseed=200`` role, Fig. 8): seed **487**,
  10 legs, visits ``(0,0) → (-1,2) → (-2,1) → (-1,2)`` — three genuine
  boundary crossings; the fuzzy system must hand over three times.

Both sequences are verbatim the ones printed in the paper's Sec. 5.
The seeds are frozen here (rather than re-searched at run time) so that
every experiment, test and benchmark sees bit-identical walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility.base import Trace, TraceBatch
from ..mobility.seedsearch import cell_sequence_of
from ..sim.config import PAPER_SPEEDS_KMH, SimulationParameters
from ..sim.measurement import MeasurementSeries

__all__ = [
    "WalkScenario",
    "FleetScenario",
    "SCENARIO_PINGPONG",
    "SCENARIO_CROSSING",
    "SCENARIO_FLEET",
    "make_trace",
    "crossing_epochs",
    "measurement_point_epochs",
]

Cell = tuple[int, int]


@dataclass(frozen=True)
class WalkScenario:
    """A reproducible walk with a known relationship to the layout."""

    name: str
    paper_iseed: int
    seed: int
    n_walks: int
    expected_sequence: tuple[Cell, ...]
    description: str

    def generate(self, params: SimulationParameters) -> Trace:
        """The frozen walk under the given physical configuration."""
        return params.make_walk(self.n_walks).generate_seeded(self.seed)

    def verify_sequence(self, params: SimulationParameters) -> bool:
        """Check the frozen seed still produces the expected cells
        (guards against accidental changes to the walk model)."""
        layout = params.make_layout()
        seq = cell_sequence_of(self.generate(params), layout)
        return tuple(seq) == self.expected_sequence


SCENARIO_PINGPONG = WalkScenario(
    name="pingpong-walk",
    paper_iseed=100,
    seed=555,
    n_walks=5,
    expected_sequence=((0, 0), (2, -1), (0, 0), (1, -2)),
    description=(
        "Fig. 7 analogue: boundary-hugging walk; handover would cause "
        "the ping-pong effect, the fuzzy system must hold the MS on (0,0)."
    ),
)

SCENARIO_CROSSING = WalkScenario(
    name="crossing-walk",
    paper_iseed=200,
    seed=487,
    n_walks=10,
    expected_sequence=((0, 0), (-1, 2), (-2, 1), (-1, 2)),
    description=(
        "Fig. 8 analogue: the MS marches through neighbouring cells; "
        "three handovers are necessary and must all be executed."
    ),
)


@dataclass(frozen=True)
class FleetScenario:
    """A reproducible *population* of walks for the batch engine.

    Where :class:`WalkScenario` freezes one paper walk, a fleet scenario
    describes N UEs.  It is built on the population layer
    (:mod:`repro.sim.population`): :meth:`to_population` expands the
    scenario into a :class:`~repro.sim.population.PopulationSpec` — by
    default one homogeneous cohort reproducing the original fleet
    semantics *exactly* (one seeded walk per UE, seeds ``base_seed …
    base_seed + n_ues - 1``, so any single UE can be replayed through
    the scalar pipeline bit-for-bit, with speeds cycled over
    :attr:`speeds_kmh`), or the mixed :attr:`cohorts` of a heterogeneous
    scenario.  :meth:`run` takes the whole fleet through measurement and
    the :class:`~repro.sim.batch.BatchSimulator` in one vectorised pass;
    :meth:`run_sharded` partitions the same fleet over the
    :mod:`repro.sim.fleet` execution layer and merges the metrics —
    bit-identical to the unsharded run by construction.
    """

    name: str
    n_ues: int = 100
    n_walks: int = 10
    base_seed: int = 1000
    speeds_kmh: tuple[float, ...] = PAPER_SPEEDS_KMH
    description: str = ""
    #: optional heterogeneous mix; ``None`` means one homogeneous
    #: random-walk cohort with the scenario's speed cycle
    cohorts: tuple | None = None

    def __post_init__(self) -> None:
        if self.n_ues < 1:
            raise ValueError(f"n_ues must be >= 1, got {self.n_ues}")
        if self.n_walks < 1:
            raise ValueError(f"n_walks must be >= 1, got {self.n_walks}")
        if not self.speeds_kmh:
            raise ValueError("speeds_kmh must be non-empty")
        if self.cohorts is not None and not self.cohorts:
            raise ValueError("cohorts must be None or non-empty")

    # ------------------------------------------------------------------
    @classmethod
    def from_mix(
        cls,
        mix: str,
        n_ues: int = 100,
        base_seed: int = 1000,
        description: str = "",
    ) -> "FleetScenario":
        """A heterogeneous scenario from a registered named mix (see
        :data:`repro.sim.population.POPULATION_MIXES`)."""
        from ..sim.population import named_population

        pop = named_population(mix, n_ues=n_ues, base_seed=base_seed)
        return cls(
            name=f"{mix}-{n_ues}",
            n_ues=n_ues,
            base_seed=base_seed,
            cohorts=pop.cohorts,
            description=description or f"named mix {mix!r} over {n_ues} UEs",
        )

    def to_population(self, params: SimulationParameters | None = None):
        """This scenario as a declarative
        :class:`~repro.sim.population.PopulationSpec`."""
        from ..sim.population import PopulationSpec, UECohort

        if params is None:
            params = SimulationParameters()
        cohorts = self.cohorts
        if cohorts is None:
            cohorts = (
                UECohort(
                    name="default",
                    model=params.make_walk(self.n_walks),
                    count=self.n_ues,
                    speeds_kmh=tuple(self.speeds_kmh),
                ),
            )
        return PopulationSpec(
            n_ues=self.n_ues,
            cohorts=tuple(cohorts),
            params=params,
            base_seed=self.base_seed,
        )

    def to_spec(self, params: SimulationParameters | None = None):
        """This scenario as a picklable :class:`repro.sim.FleetSpec`
        (the sharded execution layer's currency), built on the
        population expansion — byte-identical to the pre-population
        fleet path for homogeneous scenarios."""
        from ..sim.fleet import FleetSpec

        return FleetSpec.from_population(self.to_population(params))

    def walk_seeds(self) -> list[int]:
        """One deterministic walk seed per UE."""
        return list(range(self.base_seed, self.base_seed + self.n_ues))

    def ue_speeds(self) -> np.ndarray:
        """``(n_ues,)`` per-UE speeds of the population expansion."""
        return self.to_population().ue_speeds()

    def make_batch(
        self, params: SimulationParameters | None = None
    ) -> TraceBatch:
        """The fleet's walks under the given physical configuration."""
        return self.to_population(params).traces()

    def run(self, params: SimulationParameters | None = None, system=None):
        """Measure and simulate the whole fleet in one batched pass.

        Returns a :class:`~repro.sim.batch.BatchSimulationResult`; pass
        a custom :class:`~repro.core.system.FuzzyHandoverSystem` to run
        a non-default pipeline configuration.
        """
        return self.to_spec(params).shard(1)[0].run(system=system)

    def run_sharded(
        self,
        params: SimulationParameters | None = None,
        n_shards: int = 1,
        max_workers: int | None = None,
        window_km: float | None = None,
        backend: str | None = None,
        flc_backend: str | None = None,
        hosts: list[str] | None = None,
        tile_epochs: int | None = None,
        executor=None,
    ):
        """Partition the fleet into shards, run them (in-process, over
        a worker pool, or across ``repro worker`` socket hosts) and
        merge the streaming per-shard metrics.

        Returns a :class:`~repro.sim.metrics.FleetMetrics` identical to
        ``compute_fleet_metrics(self.run(params))`` for every shard,
        worker count and host list; ``backend`` pins the pathloss
        kernel (:mod:`repro.radio.backends` name) the measurement
        passes use, ``flc_backend`` the FLC inference kernel
        (:mod:`repro.fuzzy.compiled` name — handover decisions are
        identical on every FLC backend), ``hosts`` runs the shards
        on the fault-tolerant distributed backend
        (:class:`~repro.sim.distributed.DistributedExecutor`), and
        ``tile_epochs`` pins the epoch-tile policy of the shards'
        measurement passes (``0`` materialises, ``>= 1`` streams —
        byte-identical metrics, constant memory in the horizon), and
        ``executor`` supplies a pre-built execution backend — e.g. a
        :class:`~repro.sim.distributed.DistributedExecutor` with tuned
        heartbeat/retry knobs — instead of ``max_workers``/``hosts``.
        """
        from ..sim.fleet import run_fleet
        from ..sim.metrics import DEFAULT_WINDOW_KM

        return run_fleet(
            self.to_spec(params),
            n_shards=n_shards,
            max_workers=max_workers,
            window_km=DEFAULT_WINDOW_KM if window_km is None else window_km,
            backend=backend,
            flc_backend=flc_backend,
            hosts=hosts,
            tile_epochs=tile_epochs,
            executor=executor,
        )


#: Default fleet workload: 100 UEs, 10-leg walks, the paper's speed
#: sweep cycled across the population.
SCENARIO_FLEET = FleetScenario(
    name="fleet-100",
    description=(
        "100 mixed-speed UEs on independent seeded walks — the batch "
        "engine's reference workload (any UE replays bit-identically "
        "through the scalar pipeline)."
    ),
)


def make_trace(
    scenario: WalkScenario, params: SimulationParameters | None = None
) -> Trace:
    """Convenience: the scenario's trace under (default) paper params."""
    if params is None:
        params = SimulationParameters()
    return scenario.generate(params)


def crossing_epochs(series: MeasurementSeries) -> list[int]:
    """Epoch indices where the geometrically strongest BS changes.

    These are the walk's true boundary crossings — the paper's
    "measurement points" where the MS "is in the boundary of the
    3 cells".
    """
    strongest = series.strongest_cell_indices()
    return [int(k) + 1 for k in np.nonzero(np.diff(strongest) != 0)[0]]


def measurement_point_epochs(
    series: MeasurementSeries, samples_per_point: int = 2, offset: int = 2
) -> list[list[int]]:
    """The paper's measurement-point sampling: per boundary crossing,
    ``samples_per_point`` epochs straddling the crossing.

    With the default ``offset=2`` and two samples, each point yields the
    epoch ``offset`` before and ``offset`` after the crossing (clipped
    to the series), mirroring the two sub-columns per point of
    Tables 3/4.
    """
    if samples_per_point < 1:
        raise ValueError(
            f"samples_per_point must be >= 1, got {samples_per_point}"
        )
    if offset < 1:
        raise ValueError(f"offset must be >= 1, got {offset}")
    points: list[list[int]] = []
    for c in crossing_epochs(series):
        epochs: list[int] = []
        if samples_per_point == 1:
            epochs = [c]
        else:
            half = samples_per_point // 2
            before = [c - offset * (i + 1) for i in range(half)][::-1]
            after = [c + offset * (i + 1) for i in range(samples_per_point - half)]
            epochs = before + after
        epochs = [min(max(e, 1), series.n_epochs - 1) for e in epochs]
        points.append(epochs)
    return points
