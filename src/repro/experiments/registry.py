"""Experiment registry: paper artefact id → generator.

A single lookup point used by the benchmark harness and the
``reproduce_paper`` example, so "every table and figure" is an
enumerable, testable claim rather than a convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import figures as F
from . import tables as T

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    id: str
    kind: str  # "table" | "figure"
    description: str
    generate: Callable[..., object]


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "table1",
            "table",
            "The 64-rule fuzzy rule base (paper Table 1)",
            T.table_1,
        ),
        Experiment(
            "table2",
            "table",
            "Simulation parameter sheet (paper Table 2)",
            T.table_2,
        ),
        Experiment(
            "table3",
            "table",
            "Measurement-point outputs, ping-pong walk (paper Table 3)",
            T.table_3,
        ),
        Experiment(
            "table4",
            "table",
            "Measurement-point outputs, crossing walk (paper Table 4)",
            T.table_4,
        ),
        Experiment(
            "figure6", "figure", "Hexagonal cell layout (paper Fig. 6)", F.figure_6
        ),
        Experiment(
            "figure7",
            "figure",
            "Random-walk pattern, ping-pong scenario (paper Fig. 7)",
            F.figure_7,
        ),
        Experiment(
            "figure8",
            "figure",
            "Random-walk pattern, crossing scenario (paper Fig. 8)",
            F.figure_8,
        ),
        Experiment(
            "figure9",
            "figure",
            "Received power from BS(0,0) along the crossing walk (Fig. 9)",
            F.figure_9,
        ),
        Experiment(
            "figure10",
            "figure",
            "Received power from BS(-1,2) along the crossing walk (Fig. 10)",
            F.figure_10,
        ),
        Experiment(
            "figure11",
            "figure",
            "Received power from BS(-2,1) along the crossing walk (Fig. 11)",
            F.figure_11,
        ),
        Experiment(
            "figure12",
            "figure",
            "3-BS powers at measurement points, ping-pong walk (Fig. 12)",
            F.figure_12,
        ),
        Experiment(
            "figure13",
            "figure",
            "3-BS powers at measurement points, crossing walk (Fig. 13)",
            F.figure_13,
        ),
    ]
}


def experiment_ids() -> list[str]:
    """All registered paper artefacts, stable order."""
    return list(EXPERIMENTS)


def get_experiment(exp_id: str) -> Experiment:
    """Look up one registered paper artefact by id (e.g. ``"table3"``)."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
