"""Rendering helpers and the all-experiments report.

:func:`full_report` regenerates every table and figure and concatenates
their renderings — this is what ``examples/reproduce_paper.py`` prints
and what EXPERIMENTS.md quotes from.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.config import SimulationParameters
from . import figures as F
from . import tables as T

__all__ = ["section", "full_report"]


def section(title: str, body: str, rule: str = "=") -> str:
    """A titled report section with an underline rule."""
    bar = rule * max(len(title), 8)
    return f"{title}\n{bar}\n{body}\n"


def full_report(params: Optional[SimulationParameters] = None) -> str:
    """Regenerate every paper artefact and render one long report."""
    if params is None:
        params = SimulationParameters()
    parts: list[str] = []

    parts.append(section("Table 1 — Fuzzy Rule Base", T.table_1()))
    parts.append(section("Table 2 — Simulation parameters", T.table_2(params)))

    t3 = T.table_3(params)
    parts.append(section("Table 3 — ping-pong walk outputs", t3.render()))
    t4 = T.table_4(params)
    parts.append(section("Table 4 — crossing walk outputs", t4.render()))

    fig_fns: list[Callable[..., F.FigureData]] = [
        F.figure_6,
        F.figure_7,
        F.figure_8,
        F.figure_9,
        F.figure_10,
        F.figure_11,
        F.figure_12,
        F.figure_13,
    ]
    for fn in fig_fns:
        fig = fn(params)
        parts.append(section(f"{fig.name} — {fig.title}", fig.render()))

    verdicts = [
        f"Table 3 shape (no handover at any speed): "
        f"{'PASS' if t3.handovers_by_speed() == {s: 0 for s in t3.handovers_by_speed()} else 'CHECK'}",
        f"Table 4 shape (3 handovers at 0 km/h): "
        f"{'PASS' if t4.handovers_by_speed().get(0.0) == 3 else 'CHECK'}",
    ]
    parts.append(section("Shape verdicts", "\n".join(verdicts)))
    return "\n".join(parts)
