"""Generators for the paper's figures.

Each ``figure_N`` function returns a :class:`FigureData` holding the
exact numeric series the corresponding paper figure plots, plus an
ASCII rendering for terminal inspection.  Numeric access is what the
tests and EXPERIMENTS.md assertions use; the rendering is for humans.

=========  ===========================================================
figure     content
=========  ===========================================================
figure_6   hexagonal cell layout with paper (i, j) labels
figure_7   random-walk pattern, ping-pong scenario (iseed=100 role)
figure_8   random-walk pattern, crossing scenario (iseed=200 role)
figure_9   received power from BS(0,0) along the crossing walk
figure_10  received power from BS(-1,2) along the crossing walk
figure_11  received power from BS(-2,1) along the crossing walk
figure_12  3-BS powers + measurement points, ping-pong walk
figure_13  3-BS powers + measurement points, crossing walk
=========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.asciiplot import ascii_multiplot
from ..analysis.stats import crossing_points
from ..sim.config import SimulationParameters
from ..sim.measurement import MeasurementSampler, MeasurementSeries
from .scenarios import (
    SCENARIO_CROSSING,
    SCENARIO_PINGPONG,
    WalkScenario,
    crossing_epochs,
)

__all__ = [
    "FigureData",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_9",
    "figure_10",
    "figure_11",
    "figure_12",
    "figure_13",
    "walk_figure",
    "power_figure",
    "measurement_points_figure",
]

Cell = tuple[int, int]


@dataclass(frozen=True)
class FigureData:
    """Numeric content of one reproduced figure."""

    name: str
    title: str
    x: np.ndarray
    series: dict[str, np.ndarray]
    xlabel: str = ""
    ylabel: str = ""
    meta: dict = field(default_factory=dict)

    def render(self, width: int = 72, height: int = 18) -> str:
        labels = list(self.series)
        return ascii_multiplot(
            self.x,
            [self.series[k] for k in labels],
            labels=labels,
            width=width,
            height=height,
            title=self.title,
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )


def _measure(
    scenario: WalkScenario, params: Optional[SimulationParameters]
) -> tuple[SimulationParameters, MeasurementSeries]:
    if params is None:
        params = SimulationParameters()
    layout = params.make_layout()
    sampler = MeasurementSampler(
        layout,
        params.make_propagation(),
        spacing_km=params.measurement_spacing_km,
    )
    return params, sampler.measure(scenario.generate(params))


# ----------------------------------------------------------------------
# Fig. 6 — cell layout
# ----------------------------------------------------------------------
def figure_6(params: Optional[SimulationParameters] = None) -> FigureData:
    """The hexagonal layout: BS coordinates in the paper's (i, j) scheme."""
    if params is None:
        params = SimulationParameters()
    layout = params.make_layout()
    xs = layout.bs_positions[:, 0]
    ys = layout.bs_positions[:, 1]
    return FigureData(
        name="figure_6",
        title="Cell layout (BS sites, paper (i,j) scheme)",
        x=xs,
        series={"BS sites": ys},
        xlabel="Distance [km]",
        ylabel="Distance [km]",
        meta={
            "cells": list(layout.cells),
            "cell_radius_km": layout.cell_radius_km,
            "spacing_km": layout.grid.spacing_km,
        },
    )


# ----------------------------------------------------------------------
# Figs. 7/8 — walk patterns
# ----------------------------------------------------------------------
def walk_figure(
    scenario: WalkScenario,
    name: str,
    params: Optional[SimulationParameters] = None,
) -> FigureData:
    """A walk pattern over the cell layout (paper Figs. 7/8)."""
    if params is None:
        params = SimulationParameters()
    layout = params.make_layout()
    trace = scenario.generate(params)
    dense = trace.densify(params.measurement_spacing_km)
    seq = layout.cell_sequence(dense.positions)
    return FigureData(
        name=name,
        title=(
            f"Cell layout and random walk — {scenario.name} "
            f"(nwalk={scenario.n_walks})"
        ),
        x=dense.positions[:, 0],
        series={"Random Walk": dense.positions[:, 1]},
        xlabel="Distance [km]",
        ylabel="Distance [km]",
        meta={
            "cell_sequence": seq,
            "expected_sequence": list(scenario.expected_sequence),
            "waypoints": trace.positions.tolist(),
            "total_length_km": trace.total_length,
        },
    )


def figure_7(params: Optional[SimulationParameters] = None) -> FigureData:
    """RW pattern for the ping-pong scenario (paper iseed=100, nwalk=5)."""
    return walk_figure(SCENARIO_PINGPONG, "figure_7", params)


def figure_8(params: Optional[SimulationParameters] = None) -> FigureData:
    """RW pattern for the crossing scenario (paper iseed=200, nwalk=10)."""
    return walk_figure(SCENARIO_CROSSING, "figure_8", params)


# ----------------------------------------------------------------------
# Figs. 9-11 — received power along the crossing walk
# ----------------------------------------------------------------------
def power_figure(
    scenario: WalkScenario,
    cell: Cell,
    name: str,
    params: Optional[SimulationParameters] = None,
) -> FigureData:
    """Received power from one BS along a walk (paper Figs. 9–11)."""
    params, series = _measure(scenario, params)
    power = series.power_of(cell)
    return FigureData(
        name=name,
        title=f"Received power along random walk — BS{cell}",
        x=series.distance_km,
        series={f"Electric Field Intensity BS{cell}": power},
        xlabel="Distance [km]",
        ylabel="Received Power [dB]",
        meta={
            "cell": cell,
            "min_dbw": float(power.min()),
            "max_dbw": float(power.max()),
            "distance_to_bs_km": series.distances_to_bs(cell).tolist(),
        },
    )


def figure_9(params: Optional[SimulationParameters] = None) -> FigureData:
    """Received power from the serving BS(0,0) (paper Fig. 9)."""
    return power_figure(SCENARIO_CROSSING, (0, 0), "figure_9", params)


def figure_10(params: Optional[SimulationParameters] = None) -> FigureData:
    """Received power from neighbour BS(-1,2) (paper Fig. 10)."""
    return power_figure(SCENARIO_CROSSING, (-1, 2), "figure_10", params)


def figure_11(params: Optional[SimulationParameters] = None) -> FigureData:
    """Received power from neighbour BS(-2,1) (paper Fig. 11)."""
    return power_figure(SCENARIO_CROSSING, (-2, 1), "figure_11", params)


# ----------------------------------------------------------------------
# Figs. 12/13 — 3-BS powers and measurement points
# ----------------------------------------------------------------------
def measurement_points_figure(
    scenario: WalkScenario,
    cells: tuple[Cell, Cell, Cell],
    name: str,
    params: Optional[SimulationParameters] = None,
) -> FigureData:
    """Three BS power curves with the boundary measurement points
    (paper Figs. 12/13)."""
    params, series = _measure(scenario, params)
    series_map = {
        f"Electric Field Intensity BS{c}": series.power_of(c) for c in cells
    }
    points = crossing_epochs(series)
    crossings: dict[str, list[float]] = {}
    base = series.power_of(cells[0])
    for c in cells[1:]:
        crossings[str(c)] = crossing_points(
            series.distance_km, base, series.power_of(c)
        )
    return FigureData(
        name=name,
        title=f"Received power along random walk — {scenario.name}",
        x=series.distance_km,
        series=series_map,
        xlabel="Distance [km]",
        ylabel="Received Power [dB]",
        meta={
            "cells": list(cells),
            "measurement_epochs": points,
            "measurement_distances_km": [
                float(series.distance_km[k]) for k in points
            ],
            "power_crossovers_km": crossings,
        },
    )


def figure_12(params: Optional[SimulationParameters] = None) -> FigureData:
    """3 measurement points for the ping-pong walk (paper Fig. 12).

    The three BSs are the cells of the Fig.-7 sequence:
    (0,0), (2,-1), (1,-2).
    """
    return measurement_points_figure(
        SCENARIO_PINGPONG, ((0, 0), (2, -1), (1, -2)), "figure_12", params
    )


def figure_13(params: Optional[SimulationParameters] = None) -> FigureData:
    """3 measurement points for the crossing walk (paper Fig. 13).

    The three BSs are the cells of the Fig.-8 sequence:
    (0,0), (-1,2), (-2,1).
    """
    return measurement_points_figure(
        SCENARIO_CROSSING, ((0, 0), (-1, 2), (-2, 1)), "figure_13", params
    )
