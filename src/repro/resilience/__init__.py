"""Deterministic chaos runtime, crash-safe checkpointing, and
degraded-mode serving.

Three pillars, one seed discipline:

* :mod:`repro.resilience.faults` — the declarative :class:`FaultPlan`
  runtime: seeded fault schedules (worker exits, frame corruption,
  report silence, deadline jitter, clock skew, injected crashes) that
  replay identically everywhere they are injected;
* :mod:`repro.resilience.checkpoint` — crash-safe checkpoint/resume
  for streaming fleet runs (``repro fleet --checkpoint DIR``), with
  byte-identical resumption after a kill at any point;
* :mod:`repro.resilience.supervisor` — a self-healing
  :class:`~repro.serve.service.DecisionService` that restarts a crashed
  decision loop from the last epoch boundary.
"""

from .checkpoint import (
    CHECKPOINT_FILENAME,
    CHECKPOINT_VERSION,
    CheckpointError,
    SimulatedCrash,
    checkpoint_path,
    load_checkpoint,
    run_fleet_checkpointed,
)
from .faults import (
    FAULT_SCOPES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultSpec,
    make_clock,
    misbehaving_client,
    silence_filter,
)
__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "FAULT_SCOPES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSpec",
    "InjectedCrash",
    "SimulatedCrash",
    "SupervisedDecisionService",
    "checkpoint_path",
    "load_checkpoint",
    "make_clock",
    "misbehaving_client",
    "run_fleet_checkpointed",
    "silence_filter",
]


def __getattr__(name: str):
    # lazy: repro.serve.service imports the fault runtime from this
    # package, and the supervisor imports repro.serve.service — eager
    # re-export here would close that cycle during interpreter import
    if name in ("InjectedCrash", "SupervisedDecisionService"):
        from . import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

