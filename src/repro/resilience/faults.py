"""The deterministic fault runtime.

A :class:`FaultPlan` is a *seeded, declarative schedule of faults*: a
tuple of :class:`FaultRule` entries, each naming a scope (worker task
handling, serve-transport frames, UE report emission, epoch deadlines,
the service clock, checkpoint writes, epoch processing), a failure mode,
and a trigger (the N-th event of that scope, optionally repeating,
optionally probabilistic).  Every probabilistic decision and every drawn
magnitude derives from ``default_rng([plan.seed, rule_index, event])``
— a pure function of the plan and the event count, never of wall-clock
time — so replaying the same plan against the same workload fires the
same faults in the same places, and the fired-counter bookkeeping of a
chaos run is byte-reproducible.

Injection points across the repo consume the plan through
:meth:`FaultPlan.injector`:

* :class:`~repro.sim.distributed.WorkerServer` polls a ``"worker"``
  injector per received task (exit / drop / hang — the semantics the
  legacy :class:`FaultSpec` pioneered);
* :func:`misbehaving_client` drives serve-transport chaos from
  ``"frame"`` rules (abrupt exit, truncated frame, garbage frame,
  silent hang, delay) — the shared scaffolding the serve fault tests
  run on;
* ``"report"`` rules silence (or burst-duplicate) a UE's report stream
  in replay drivers;
* :class:`~repro.serve.service.DecisionService` derives per-epoch
  deadline jitter from ``"deadline"`` rules and a skewed monotonic
  clock from ``"clock"`` rules (via :func:`make_clock`);
* the checkpoint runner (``"checkpoint"``) and the serve supervisor
  (``"epoch"``) crash on schedule to exercise recovery paths.

:class:`FaultSpec` — the original single-fault worker arming — lives
here now; :mod:`repro.sim.distributed` re-exports it for compatibility.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "FAULT_SCOPES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSpec",
    "make_clock",
    "misbehaving_client",
    "silence_filter",
]


# ----------------------------------------------------------------------
# the legacy single-fault spec (promoted out of sim.distributed)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Arms a :class:`~repro.sim.distributed.WorkerServer` to fail while
    handling a task.

    ``after``
        Trigger on the N-th task the server *receives* (1-based), i.e.
        mid-shard: the task arrived but its result never will.
    ``mode``
        ``"exit"`` kills the worker process (``os._exit``) — the
        production fault.  ``"drop"`` closes just the connection and
        keeps serving (usable from in-process test servers, and
        exercises client reconnect).  ``"hang"`` goes silent without
        closing — only heartbeat-silence detection catches it.
    ``repeat``
        Trigger on *every* task from ``after`` on (drives the
        retries-exhausted path) instead of once.
    """

    after: int = 1
    mode: str = "exit"
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")
        if self.mode not in ("exit", "drop", "hang"):
            raise ValueError(f"unknown fault mode {self.mode!r}")

    def as_plan(self) -> "FaultPlan":
        """The equivalent one-rule worker-scope :class:`FaultPlan`."""
        return FaultPlan(
            rules=(
                FaultRule(
                    scope="worker",
                    mode=self.mode,
                    after=self.after,
                    repeat=self.repeat,
                ),
            )
        )


# ----------------------------------------------------------------------
# the declarative plan
# ----------------------------------------------------------------------
#: Valid ``scope -> modes`` pairs.  Scopes name *event streams* (each
#: injector counts one stream); modes name what happens when a rule
#: fires on an event of that stream.
FAULT_SCOPES: dict[str, tuple[str, ...]] = {
    # worker task handling (WorkerServer): the FaultSpec trio
    "worker": ("exit", "drop", "hang"),
    # serve-transport frames (misbehaving_client): connection chaos
    "frame": ("exit", "drop", "corrupt", "hang", "delay"),
    # UE report emission (replay drivers): silence / duplicate bursts
    "report": ("silence", "burst"),
    # serve epoch deadlines: ± jitter on the effective deadline
    "deadline": ("jitter",),
    # the service's monotonic clock: rate skew
    "clock": ("skew",),
    # checkpoint writes (run_fleet_checkpointed): simulated kill
    "checkpoint": ("crash",),
    # serve epoch processing (SupervisedDecisionService): loop crash
    "epoch": ("crash",),
}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    Parameters
    ----------
    scope:
        Which event stream the rule watches (see :data:`FAULT_SCOPES`).
    mode:
        What happens when the rule fires; valid modes depend on the
        scope.
    after:
        Fire on the ``after``-th event of the scope (1-based).  For
        ``"deadline"`` rules the event index is the epoch number + 1,
        and the rule applies from that epoch on (jitter is per-epoch,
        not consumed).
    repeat:
        Fire on *every* event from ``after`` on instead of exactly once.
    probability:
        Chance the rule fires on an otherwise-due event; decided
        deterministically from the plan seed, the rule index, and the
        event count.
    magnitude:
        Mode-specific size: jitter half-width as a fraction of the base
        deadline (``"jitter"``), clock rate skew (``"skew"``; +0.25 runs
        25 % fast), sleep seconds (``"delay"`` / ``"hang"``), burst
        copies (``"burst"``).
    ue:
        Restrict the rule to one UE (``"report"`` scope); ``None``
        matches any.
    """

    scope: str
    mode: str
    after: int = 1
    repeat: bool = False
    probability: float = 1.0
    magnitude: float = 0.0
    ue: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scope not in FAULT_SCOPES:
            raise ValueError(
                f"unknown fault scope {self.scope!r}; "
                f"expected one of {sorted(FAULT_SCOPES)}"
            )
        if self.mode not in FAULT_SCOPES[self.scope]:
            raise ValueError(
                f"mode {self.mode!r} is not valid for scope "
                f"{self.scope!r}; expected one of "
                f"{FAULT_SCOPES[self.scope]}"
            )
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        if not np.isfinite(self.magnitude) or self.magnitude < 0.0:
            raise ValueError(
                f"magnitude must be finite and >= 0, got {self.magnitude}"
            )
        if self.ue is not None and self.ue < 0:
            raise ValueError(f"ue must be >= 0, got {self.ue}")

    # -- JSON schema ---------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe dict form (the FaultPlan schema's rule entry)."""
        return {
            "scope": self.scope,
            "mode": self.mode,
            "after": self.after,
            "repeat": self.repeat,
            "probability": self.probability,
            "magnitude": self.magnitude,
            "ue": self.ue,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultRule":
        return cls(
            scope=str(payload["scope"]),
            mode=str(payload["mode"]),
            after=int(payload.get("after", 1)),
            repeat=bool(payload.get("repeat", False)),
            probability=float(payload.get("probability", 1.0)),
            magnitude=float(payload.get("magnitude", 0.0)),
            ue=(None if payload.get("ue") is None else int(payload["ue"])),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultRule` entries.

    The plan itself is immutable and free of runtime state; injection
    points each obtain a counting :class:`FaultInjector` for their scope
    via :meth:`injector`.  Determinism contract: two runs that process
    the same event streams against the same plan fire the same rules on
    the same events and draw the same magnitudes.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(
                    f"rules must be FaultRule instances, got {rule!r}"
                )

    def injector(
        self, scope: str, ue: Optional[int] = None
    ) -> "FaultInjector":
        """A fresh counting injector over this plan's ``scope`` rules
        (optionally narrowed to one UE for ``"report"`` streams)."""
        if scope not in FAULT_SCOPES:
            raise ValueError(
                f"unknown fault scope {scope!r}; "
                f"expected one of {sorted(FAULT_SCOPES)}"
            )
        return FaultInjector(self, scope, ue=ue)

    def rules_for(self, scope: str) -> tuple[tuple[int, FaultRule], ...]:
        """``(plan_index, rule)`` pairs of one scope, in plan order."""
        return tuple(
            (i, r) for i, r in enumerate(self.rules) if r.scope == scope
        )

    # -- JSON schema ---------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe dict form: ``{"seed": int, "rules": [rule...]}``
        (see README for the documented schema)."""
        return {
            "seed": self.seed,
            "rules": [r.to_payload() for r in self.rules],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            rules=tuple(
                FaultRule.from_payload(p) for p in payload.get("rules", ())
            ),
        )


class FaultInjector:
    """Counts one scope's events and fires the plan's rules on them.

    ``poll()`` records one event and returns the rule that fires on it
    (first matching rule in plan order), or ``None``.  The injector
    keeps per-rule fired counters — the observable that the
    replay-determinism tests compare across runs.
    """

    def __init__(
        self, plan: FaultPlan, scope: str, ue: Optional[int] = None
    ) -> None:
        self.plan = plan
        self.scope = scope
        self.ue = ue
        self._rules = [
            (i, r)
            for i, r in plan.rules_for(scope)
            if ue is None or r.ue is None or r.ue == ue
        ]
        self.events = 0
        self.fired: dict[int, int] = {i: 0 for i, _ in self._rules}

    # ------------------------------------------------------------------
    def poll(self) -> Optional[FaultRule]:
        """Record one event of the scope; the rule firing on it, if any."""
        self.events += 1
        for i, rule in self._rules:
            due = (
                self.events >= rule.after
                if rule.repeat
                else self.events == rule.after
            )
            if not due:
                continue
            if rule.probability < 1.0:
                rng = np.random.default_rng(
                    [self.plan.seed, i, self.events]
                )
                if rng.random() >= rule.probability:
                    continue
            self.fired[i] += 1
            return rule
        return None

    def magnitude(self, rule: FaultRule, event: Optional[int] = None) -> float:
        """A deterministic signed draw in ``[-magnitude, +magnitude]``
        for jitter-style rules, keyed by the event index (defaults to
        the current event count)."""
        i = self.plan.rules.index(rule)
        e = self.events if event is None else event
        rng = np.random.default_rng([self.plan.seed, i, e])
        return float(rng.uniform(-rule.magnitude, rule.magnitude))

    def jitter(self, index: int) -> float:
        """Total signed jitter fraction at event ``index`` (e.g. epoch
        number) across this scope's ``"jitter"`` rules — a pure function
        of ``(plan.seed, rule, index)``, consuming no events."""
        total = 0.0
        for i, rule in self._rules:
            if rule.mode != "jitter":
                continue
            if index + 1 < rule.after or (
                not rule.repeat and index + 1 != rule.after
            ):
                continue
            rng = np.random.default_rng([self.plan.seed, i, index])
            total += float(rng.uniform(-rule.magnitude, rule.magnitude))
        return total

    def counters(self) -> dict:
        """The replay-comparable observable: events seen and per-rule
        fired counts (keyed by plan rule index)."""
        return {"events": self.events, "fired": dict(self.fired)}

    def __repr__(self) -> str:
        return (
            f"FaultInjector(scope={self.scope!r}, events={self.events}, "
            f"rules={len(self._rules)})"
        )


# ----------------------------------------------------------------------
# clock skew
# ----------------------------------------------------------------------
def make_clock(
    plan: Optional[FaultPlan],
    base: Callable[[], float] = time.monotonic,
) -> Callable[[], float]:
    """A monotonic clock with the plan's ``"clock"`` skew applied.

    ``"skew"`` rules scale elapsed time by ``(1 + magnitude)`` — the
    service under a fast clock hits its epoch deadlines early, a slow
    one late.  Without clock rules the base clock is returned as-is.
    """
    if plan is None:
        return base
    skew = sum(
        r.magnitude for r in plan.rules if r.scope == "clock"
    )
    if skew == 0.0:
        return base
    t0 = base()
    rate = 1.0 + skew

    def skewed() -> float:
        return t0 + (base() - t0) * rate

    return skewed


# ----------------------------------------------------------------------
# serve-transport chaos client
# ----------------------------------------------------------------------
async def misbehaving_client(
    host: str,
    port: int,
    plan: FaultPlan,
    reports: Sequence,
    *,
    ue: int,
    speed_kmh: float = 30.0,
    codec: str = "json",
) -> FaultInjector:
    """Stream ``reports`` to a serve server, misbehaving per the plan.

    The shared scaffolding of the serve transport-fault tests: connects,
    subscribes ``ue``, then sends one report frame per entry of
    ``reports``, polling a ``"frame"`` injector *after* each send — so a
    rule with ``after=N`` lets ``N`` good frames through and misbehaves
    in place of the ``N+1``-th:

    * ``"exit"`` — abruptly close the connection (no shutdown frame);
    * ``"drop"`` — send a deliberately truncated frame, then close;
    * ``"corrupt"`` — send an undecodable body under a valid length
      prefix, then close;
    * ``"hang"`` — go silent for ``magnitude`` seconds (default 0.2),
      then close without a farewell;
    * ``"delay"`` — sleep ``magnitude`` seconds and keep streaming.

    Returns the frame injector so callers can assert fired counters.
    """
    from ..serve.protocol import encode_frame

    injector = plan.injector("frame")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            encode_frame(
                {"type": "subscribe", "ue": ue, "speed_kmh": speed_kmh},
                codec=codec,
            )
        )
        await writer.drain()
        # the subscribe ack is a full frame; read it through the
        # protocol reader so the stream stays aligned
        from ..serve.protocol import read_frame

        await read_frame(reader)
        for report in reports:
            # Report.to_payload() is already the typed wire message
            frame = encode_frame(report.to_payload(), codec=codec)
            writer.write(frame)
            await writer.drain()
            rule = injector.poll()
            if rule is None:
                continue
            if rule.mode == "delay":
                await asyncio.sleep(rule.magnitude)
                continue
            if rule.mode == "drop":
                # half a frame: length prefix promises more than we send
                writer.write(frame[: max(5, len(frame) // 2)])
                await writer.drain()
            elif rule.mode == "corrupt":
                body = b"Jnot json at all"
                writer.write(len(body).to_bytes(4, "big") + body)
                await writer.drain()
            elif rule.mode == "hang":
                await asyncio.sleep(rule.magnitude or 0.2)
            return injector  # exit / drop / corrupt / hang: abandon
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return injector


def silence_filter(
    plan: Optional[FaultPlan], ue_ids: Iterable[int]
) -> Callable[[int, int], bool]:
    """A ``(ue, epoch) -> should_send`` predicate from the plan's
    ``"report"`` silence rules.

    Each UE gets its own counting injector (one event per epoch), so a
    ``silence`` rule with ``after=K, repeat=True`` mutes the UE from its
    K-th report on — the canonical silent-UE chaos driver.  Without a
    plan every report is sent.
    """
    if plan is None:
        return lambda ue, epoch: True
    injectors = {ue: plan.injector("report", ue=ue) for ue in ue_ids}

    def should_send(ue: int, epoch: int) -> bool:
        injector = injectors.get(ue)
        if injector is None:
            return True
        rule = injector.poll()
        return not (rule is not None and rule.mode == "silence")

    return should_send
