"""Crash-safe checkpoint/resume for streaming fleet runs.

:func:`run_fleet_checkpointed` drives a homogeneous
:class:`~repro.sim.fleet.FleetSpec` shard by shard through the
epoch-tiled streaming engine, snapshotting resumable state into a
checkpoint file at tile boundaries.  A run killed at *any* point — even
``SIGKILL`` between checkpoints — resumes from the last snapshot and
finishes **byte-identical** to the uninterrupted run, because every
piece of state the epoch loop carries is captured exactly:

* the :class:`~repro.sim.metrics.FleetMetricsAccumulator` per-UE
  reduction arrays (integer counters, float partial sums — restored
  bit-for-bit, so the remaining epochs extend the same accumulation
  sequence);
* the drive loop's per-UE serving cell, CSSP history window, and
  history length;
* each :class:`~repro.radio.fading.ShadowFadingStream`'s generator bit
  state and AR(1) boundary row, so resumed fading continues the exact
  draw sequence;
* the next tile-boundary epoch and the per-shard completion ledger
  (finished shards store their final :class:`FleetMetrics`).

Checkpoint file format (``<dir>/fleet.ckpt``, an atomically replaced
pickle)::

    {
      "version":     1,
      "fingerprint": sha256 of (spec, n_shards, window, outage, tile),
      "n_shards":    int,
      "completed":   {shard_index: FleetMetrics, ...},
      "in_progress": None | {"shard": int, "snapshot": {
                       "next_epoch":   int   (tile boundary),
                       "serving":      (n,) intp,
                       "hist":         (n, lag) float,
                       "hist_len":     (n,) intp,
                       "consumer":     FleetMetricsAccumulator.state_dict(),
                       "fading_state": None | [ShadowFadingStream.state_dict()],
                     }},
      "result":      None | FleetMetrics (set once merged),
    }

The fingerprint binds a checkpoint to one exact workload; resuming with
a different spec, shard count, metrics window, or tile size raises
:class:`CheckpointError` instead of silently merging foreign state.

Writes are atomic (tmp file + fsync + ``os.replace``), so the file is
always either the previous or the next consistent snapshot — never a
torn one.  A ``"checkpoint"``-scope ``"crash"`` rule in a
:class:`~repro.resilience.faults.FaultPlan` raises
:class:`SimulatedCrash` *before* the due write, which is exactly the
kill-between-checkpoints window the resume tests exercise in-process.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..sim.batch import BatchSimulator
from ..sim.fleet import FleetSpec
from ..sim.measurement import DEFAULT_TILE_EPOCHS, resolve_tile_epochs
from ..sim.metrics import (
    DEFAULT_OUTAGE_DBW,
    DEFAULT_WINDOW_KM,
    FleetMetrics,
    FleetMetricsAccumulator,
    merge_fleet_metrics,
)
from .faults import FaultPlan

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "SimulatedCrash",
    "checkpoint_path",
    "load_checkpoint",
    "run_fleet_checkpointed",
]

CHECKPOINT_VERSION = 1
CHECKPOINT_FILENAME = "fleet.ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or belongs to another workload."""


class SimulatedCrash(RuntimeError):
    """Raised by a ``"checkpoint"``-scope crash rule: the in-process
    stand-in for a kill between checkpoint writes."""


def checkpoint_path(directory: Union[str, Path]) -> Path:
    """The checkpoint file inside ``directory``."""
    return Path(directory) / CHECKPOINT_FILENAME


def _atomic_write(path: Path, state: dict) -> None:
    """Write-then-rename so the file is never observed half-written,
    fsyncing before the rename so a machine crash cannot leave a
    renamed-but-empty file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(directory: Union[str, Path]) -> Optional[dict]:
    """The checkpoint state in ``directory``, or ``None`` when absent."""
    path = checkpoint_path(directory)
    if not path.exists():
        return None
    try:
        with path.open("rb") as fh:
            state = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(state, dict) or "version" not in state:
        raise CheckpointError(f"malformed checkpoint {path}")
    return state


def _fingerprint(
    spec: FleetSpec,
    n_shards: int,
    window_km: float,
    outage_dbw: float,
    tile_epochs: int,
) -> str:
    """Binds a checkpoint to one exact workload.  The spec is a frozen
    dataclass of primitives, so its pickle is stable across processes of
    one interpreter version — good enough to catch every accidental
    mismatch loudly."""
    payload = pickle.dumps(
        (spec, int(n_shards), float(window_km), float(outage_dbw),
         int(tile_epochs)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return hashlib.sha256(payload).hexdigest()


def run_fleet_checkpointed(
    spec: FleetSpec,
    *,
    checkpoint_dir: Union[str, Path],
    n_shards: int = 1,
    window_km: Optional[float] = None,
    outage_dbw: Optional[float] = None,
    tile_epochs: Optional[int] = None,
    checkpoint_every_tiles: int = 1,
    fault_plan: Optional[FaultPlan] = None,
) -> FleetMetrics:
    """Run (or resume) a fleet with crash-safe checkpointing.

    Shards run serially in-process (checkpointing owns the execution
    order; distribute *or* checkpoint, not both), each through the
    forced epoch-tiled streaming path so there are tile boundaries to
    snapshot at.  Call again with the same arguments after a crash and
    the run continues from the last checkpoint; the merged
    :class:`FleetMetrics` is byte-identical to the uninterrupted run.

    ``checkpoint_every_tiles`` thins the write cadence (a snapshot every
    m-th tile boundary).  ``fault_plan`` lets ``"checkpoint"``-scope
    crash rules kill the run deterministically between writes (tests,
    the X20 recovery bench).
    """
    if spec.population is not None:
        raise ValueError(
            "checkpointed runs support homogeneous fleet specs only, "
            "not populations"
        )
    if checkpoint_every_tiles < 1:
        raise ValueError(
            f"checkpoint_every_tiles must be >= 1, "
            f"got {checkpoint_every_tiles}"
        )
    window = DEFAULT_WINDOW_KM if window_km is None else float(window_km)
    outage = DEFAULT_OUTAGE_DBW if outage_dbw is None else float(outage_dbw)
    tile_k = resolve_tile_epochs(tile_epochs, spec.params.tile_epochs)
    if not tile_k:  # None (auto) and 0 (materialise) both force tiles here
        tile_k = DEFAULT_TILE_EPOCHS

    shards = spec.shard(n_shards)
    fingerprint = _fingerprint(spec, len(shards), window, outage, tile_k)
    path = checkpoint_path(checkpoint_dir)

    state = load_checkpoint(checkpoint_dir)
    if state is not None:
        if state["version"] != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {state['version']}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if state["fingerprint"] != fingerprint:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different workload "
                "(spec/shards/window/outage/tile mismatch)"
            )
        if state.get("result") is not None:
            return state["result"]
    else:
        state = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "n_shards": len(shards),
            "completed": {},
            "in_progress": None,
            "result": None,
        }

    injector = (
        fault_plan.injector("checkpoint") if fault_plan is not None else None
    )
    system = spec.make_system()

    for idx, shard in enumerate(shards):
        if idx in state["completed"]:
            continue
        resume = None
        in_progress = state["in_progress"]
        if in_progress is not None and in_progress["shard"] == idx:
            resume = in_progress["snapshot"]

        stream = shard.measure_tiled(tile_k)
        sim = BatchSimulator(system, speed_kmh=shard.ue_speeds())
        acc = FleetMetricsAccumulator(window, outage)
        boundaries = 0

        def on_tile_end(next_epoch, serving, hist, hist_len):
            nonlocal boundaries
            boundaries += 1
            if boundaries % checkpoint_every_tiles != 0:
                return
            if injector is not None:
                rule = injector.poll()
                if rule is not None and rule.mode == "crash":
                    # crash *before* the due write: the on-disk state
                    # stays one-or-more tiles behind, exactly the
                    # SIGKILL-between-checkpoints window
                    raise SimulatedCrash(
                        f"fault plan killed shard {idx} before the "
                        f"checkpoint at epoch {next_epoch}"
                    )
            state["in_progress"] = {
                "shard": idx,
                "snapshot": {
                    "next_epoch": int(next_epoch),
                    "serving": serving.copy(),
                    "hist": hist.copy(),
                    "hist_len": hist_len.copy(),
                    "consumer": acc.state_dict(),
                    "fading_state": stream.fading_state(),
                },
            }
            _atomic_write(path, state)

        metrics = sim.drive_metrics(
            stream, acc, resume=resume, on_tile_end=on_tile_end
        )
        state["completed"][idx] = metrics
        state["in_progress"] = None
        _atomic_write(path, state)

    merged = merge_fleet_metrics(
        [state["completed"][i] for i in range(len(shards))]
    )
    state["result"] = merged
    _atomic_write(path, state)
    return merged
