"""Supervised decision serving: restart a crashed decision loop from
the last epoch boundary.

:class:`SupervisedDecisionService` is a drop-in
:class:`~repro.serve.service.DecisionService` that snapshots the
decision engine after every successful epoch close (and after every
registration), and rolls the engine back to that snapshot when an epoch
sweep raises — whether from a real defect or an ``"epoch"``-scope
``"crash"`` rule in the service's :class:`~repro.resilience.faults.
FaultPlan`.  The crashed epoch's reports are lost (counted in
``reports_dropped_crash``), the restart is counted in
``loop_restarts``, and serving continues from the boundary exactly as
if that epoch's reports had never been submitted — the identity the
resilience tests pin.

Injected crashes fire *after* the real engine sweep mutated state, so
the tests prove the rollback actually restores — not that nothing
happened.
"""

from __future__ import annotations

from ..serve.service import DecisionService
from .faults import FaultPlan

__all__ = ["InjectedCrash", "SupervisedDecisionService"]


class InjectedCrash(RuntimeError):
    """Raised by an ``"epoch"``-scope crash rule mid-decision-sweep."""


class SupervisedDecisionService(DecisionService):
    """A :class:`DecisionService` whose decision loop self-heals.

    Accepts every ``DecisionService`` argument.  ``"epoch"``-scope
    ``"crash"`` rules in ``fault_plan`` deterministically crash the
    n-th decision sweep (after its engine mutations), exercising the
    restore path without monkeypatching.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._epoch_injector = (
            self.fault_plan.injector("epoch")
            if self.fault_plan is not None
            else None
        )
        if self._epoch_injector is not None:
            inner = self.engine.step_epoch

            def step_epoch(reports, epoch=None):
                commands = inner(reports, epoch=epoch)
                rule = self._epoch_injector.poll()
                if rule is not None and rule.mode == "crash":
                    # the sweep already mutated engine state — the
                    # supervisor must genuinely roll it back
                    raise InjectedCrash(
                        f"fault plan crashed the decision sweep for "
                        f"epoch {epoch}"
                    )
                return commands

            self.engine.step_epoch = step_epoch  # type: ignore[method-assign]
        self._snapshot = self.engine.state_dict()

    # ------------------------------------------------------------------
    def subscribe(self, *args, **kwargs) -> None:
        super().subscribe(*args, **kwargs)
        # registrations mutate the engine outside the close path; keep
        # the restore point current so a later rollback can't lose them
        self._snapshot = self.engine.state_dict()

    def _close_now(self, watermark: bool) -> int:
        dropped = self.scheduler.current_report_count()
        try:
            epoch = super()._close_now(watermark)
        except Exception:
            # the scheduler already advanced past the crashed epoch;
            # roll the engine back to the last boundary and keep serving
            self.engine.load_state_dict(self._snapshot)
            self.stats.loop_restarts += 1
            self.stats.reports_dropped_crash += dropped
            self._epoch_opened_at = (
                self._clock()
                if self.scheduler.has_current_reports()
                else None
            )
            return self.scheduler.current_epoch - 1
        self._snapshot = self.engine.state_dict()
        return epoch
