"""The paper's Monte-Carlo random-walk model (Sec. 3).

Each of ``n_walks`` legs draws a step length ``d`` and a heading ``θ``
and accumulates::

    Δx_n = d_n cos θ_n,   Δy_n = d_n sin θ_n          (Eq. 1)
    x_{n+1} = x_n + Δx_n, y_{n+1} = y_n + Δy_n        (Eq. 2)

Table 2 fixes the step-length law to a Gaussian with mean 0.6 km; the
paper says headings come from a "general or Gaussian" distribution, so
both are supported (uniform over the full circle is the default — the
classic unbiased random walk; the Gaussian option produces persistent
headings and is used by the seed-search to reproduce the paper's
cell-crossing walk shapes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Sequence, Union

import numpy as np

from .base import Trace, TraceBatch

__all__ = ["RandomWalk"]

AngleLaw = Literal["uniform", "gaussian"]


@dataclass(frozen=True)
class RandomWalk:
    """Monte-Carlo random walk per paper Sec. 3 / Table 2.

    Parameters
    ----------
    n_walks:
        Number of legs (paper: 5 or 10).
    mean_step_km:
        Mean leg length (paper: 0.6 km).
    step_sigma_km:
        Standard deviation of the Gaussian leg length.  Draws are
        truncated below at ``min_step_km`` by resampling, because a
        non-positive "walk" has no heading.
    angle_law:
        ``"uniform"`` — headings i.i.d. uniform on [0, 2π); or
        ``"gaussian"`` — each heading is Gaussian around the previous
        one with ``angle_sigma_rad`` spread (random initial heading),
        giving directional persistence.
    angle_sigma_rad:
        Heading spread for the Gaussian law.
    start:
        Start position in km (paper: the origin).
    min_step_km:
        Resampling floor for the truncated Gaussian step length.
    """

    n_walks: int = 5
    mean_step_km: float = 0.6
    step_sigma_km: float = 0.2
    angle_law: AngleLaw = "uniform"
    angle_sigma_rad: float = 0.8
    start: tuple[float, float] = (0.0, 0.0)
    min_step_km: float = 1e-3

    def __post_init__(self) -> None:
        if self.n_walks < 1:
            raise ValueError(f"n_walks must be >= 1, got {self.n_walks}")
        if self.mean_step_km <= 0 or not math.isfinite(self.mean_step_km):
            raise ValueError(
                f"mean_step_km must be positive, got {self.mean_step_km}"
            )
        if self.step_sigma_km < 0:
            raise ValueError(
                f"step_sigma_km must be >= 0, got {self.step_sigma_km}"
            )
        if self.angle_law not in ("uniform", "gaussian"):
            raise ValueError(f"unknown angle_law {self.angle_law!r}")
        if self.angle_sigma_rad <= 0:
            raise ValueError(
                f"angle_sigma_rad must be positive, got {self.angle_sigma_rad}"
            )
        if not (0 < self.min_step_km < self.mean_step_km):
            raise ValueError(
                "min_step_km must be positive and below mean_step_km, got "
                f"{self.min_step_km}"
            )

    # ------------------------------------------------------------------
    def _draw_steps(
        self,
        rng: np.random.Generator,
        shape: Union[int, tuple[int, ...], None] = None,
    ) -> np.ndarray:
        """Truncated-Gaussian leg lengths, shape ``(n_walks,)`` by
        default or any requested ``shape`` (the batch path draws a
        ``(n_traces, n_walks)`` matrix from the same law)."""
        if shape is None:
            shape = self.n_walks
        if self.step_sigma_km == 0.0:
            return np.full(shape, self.mean_step_km)
        out = rng.normal(self.mean_step_km, self.step_sigma_km, shape)
        bad = out < self.min_step_km
        # resample the tail instead of clipping, to keep the law Gaussian
        # conditional on positivity
        guard = 0
        while bad.any():
            out[bad] = rng.normal(
                self.mean_step_km, self.step_sigma_km, int(bad.sum())
            )
            bad = out < self.min_step_km
            guard += 1
            if guard > 1000:  # pragma: no cover - pathological sigma only
                out[bad] = self.min_step_km
                break
        return out

    def _draw_angles(self, rng: np.random.Generator) -> np.ndarray:
        if self.angle_law == "uniform":
            return rng.uniform(0.0, 2.0 * math.pi, self.n_walks)
        angles = np.empty(self.n_walks)
        angles[0] = rng.uniform(0.0, 2.0 * math.pi)
        for k in range(1, self.n_walks):
            angles[k] = rng.normal(angles[k - 1], self.angle_sigma_rad)
        return angles

    def generate(self, rng: np.random.Generator) -> Trace:
        """One walk as a :class:`Trace` of ``n_walks + 1`` way-points."""
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "generate() expects a numpy Generator; build one with "
                "numpy.random.default_rng(seed)"
            )
        d = self._draw_steps(rng)
        theta = self._draw_angles(rng)
        deltas = np.column_stack([d * np.cos(theta), d * np.sin(theta)])
        return Trace.from_steps(self.start, deltas)

    def generate_seeded(self, seed: int) -> Trace:
        """Convenience: one walk from an integer seed (the paper's
        ``iseed`` role)."""
        return self.generate(np.random.default_rng(seed))

    # ------------------------------------------------------------------
    # batch generation (the fleet-simulation hot path)
    # ------------------------------------------------------------------
    def generate_batch(
        self, rng: np.random.Generator, n_traces: int
    ) -> TraceBatch:
        """``n_traces`` walks drawn at once from one shared generator.

        All leg lengths and headings are sampled as ``(n_traces,
        n_walks)`` matrices — no per-walk Python loop.  The draw order
        differs from ``n_traces`` scalar :meth:`generate` calls, so this
        path is *not* stream-compatible with per-seed walks; use
        :meth:`generate_batch_seeded` when the batch must reproduce
        scalar runs bit-for-bit.
        """
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "generate_batch() expects a numpy Generator; build one "
                "with numpy.random.default_rng(seed)"
            )
        if n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {n_traces}")
        shape = (n_traces, self.n_walks)
        d = self._draw_steps(rng, shape)
        if self.angle_law == "uniform":
            theta = rng.uniform(0.0, 2.0 * math.pi, shape)
        else:
            # Gaussian persistence: θ_k = θ_{k-1} + σ·ε is a cumulative
            # sum of innovations around a random initial heading.
            theta = np.empty(shape)
            theta[:, 0] = rng.uniform(0.0, 2.0 * math.pi, n_traces)
            if self.n_walks > 1:
                steps = rng.normal(
                    0.0, self.angle_sigma_rad, (n_traces, self.n_walks - 1)
                )
                theta[:, 1:] = theta[:, :1] + np.cumsum(steps, axis=1)
        deltas = np.stack([d * np.cos(theta), d * np.sin(theta)], axis=2)
        start = np.asarray(self.start, dtype=float)
        pos = np.empty((n_traces, self.n_walks + 1, 2))
        pos[:, 0] = start
        np.cumsum(deltas, axis=1, out=pos[:, 1:])
        pos[:, 1:] += start
        return TraceBatch(
            pos, np.full(n_traces, self.n_walks + 1, dtype=np.intp)
        )

    def generate_batch_seeded(self, seeds: Sequence[int]) -> TraceBatch:
        """One walk per integer seed, each bit-identical to
        :meth:`generate_seeded` of that seed — the batch engine's
        equivalence-preserving entry point."""
        seeds = list(seeds)
        if not seeds:
            raise ValueError("generate_batch_seeded needs at least one seed")
        return TraceBatch.from_traces(
            self.generate_seeded(int(s)) for s in seeds
        )

    def __repr__(self) -> str:
        return (
            f"RandomWalk(n_walks={self.n_walks}, "
            f"mean_step_km={self.mean_step_km:g}, "
            f"step_sigma_km={self.step_sigma_km:g}, "
            f"angle_law={self.angle_law!r})"
        )
