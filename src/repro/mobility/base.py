"""Trace representation and the mobility-model protocol.

A :class:`Trace` is the common currency between the mobility models and
the simulator: an ordered sequence of 2-D positions (km) with helpers
for path length, densification (interpolated sub-sampling, which is how
the "received power along random walk" figures get their x-axis) and
geometric queries.

Mobility models implement :class:`MobilityModel`: ``generate(rng) ->
Trace``.  All randomness flows through an injected
``numpy.random.Generator`` so every experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

__all__ = ["Trace", "MobilityModel"]


@dataclass(frozen=True)
class Trace:
    """An ordered 2-D path in km.

    ``positions`` has shape ``(n, 2)`` with ``n >= 1``.  The first row
    is the start position (the paper's walks start at the origin).
    """

    positions: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(
                f"positions must have shape (n, 2), got {pos.shape}"
            )
        if pos.shape[0] < 1:
            raise ValueError("a trace needs at least one position")
        if not np.isfinite(pos).all():
            raise ValueError("trace positions must be finite")
        object.__setattr__(self, "positions", pos)

    # ------------------------------------------------------------------
    @classmethod
    def from_steps(
        cls, start: Iterable[float], deltas: np.ndarray
    ) -> "Trace":
        """Build a trace from a start point and ``(n, 2)`` displacement
        steps (the paper's Eq. 2 accumulation)."""
        start = np.asarray(list(start), dtype=float)
        deltas = np.atleast_2d(np.asarray(deltas, dtype=float))
        if deltas.size == 0:
            return cls(start[None, :])
        if deltas.shape[1] != 2:
            raise ValueError(f"deltas must have shape (n, 2), got {deltas.shape}")
        pos = np.vstack([start[None, :], start[None, :] + np.cumsum(deltas, axis=0)])
        return cls(pos)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.positions.shape[0]

    def __len__(self) -> int:
        return self.n_points

    @property
    def start(self) -> np.ndarray:
        return self.positions[0]

    @property
    def end(self) -> np.ndarray:
        return self.positions[-1]

    def step_lengths(self) -> np.ndarray:
        """``(n-1,)`` segment lengths in km."""
        d = np.diff(self.positions, axis=0)
        return np.sqrt((d * d).sum(axis=1))

    def headings(self) -> np.ndarray:
        """``(n-1,)`` segment headings in radians."""
        d = np.diff(self.positions, axis=0)
        return np.arctan2(d[:, 1], d[:, 0])

    def cumulative_distance(self) -> np.ndarray:
        """``(n,)`` distance walked up to each sample (starts at 0)."""
        return np.concatenate([[0.0], np.cumsum(self.step_lengths())])

    @property
    def total_length(self) -> float:
        return float(self.step_lengths().sum())

    def distance_to(self, point: Iterable[float]) -> np.ndarray:
        """``(n,)`` distance of each sample to a fixed point."""
        p = np.asarray(list(point), dtype=float)
        d = self.positions - p[None, :]
        return np.sqrt((d * d).sum(axis=1))

    # ------------------------------------------------------------------
    def densify(self, max_spacing_km: float) -> "Trace":
        """Insert interpolated samples so that no segment exceeds
        ``max_spacing_km``.

        The endpoints of every original segment are preserved, so the
        densified trace visits exactly the same way-points; this is the
        sampling used for the "received power along random walk" figures
        and for the FLC's periodic measurements.
        """
        if max_spacing_km <= 0 or not math.isfinite(max_spacing_km):
            raise ValueError(
                f"max_spacing_km must be positive, got {max_spacing_km}"
            )
        if self.n_points == 1:
            return Trace(self.positions.copy())
        pieces: list[np.ndarray] = []
        for k in range(self.n_points - 1):
            a = self.positions[k]
            b = self.positions[k + 1]
            seg = float(np.hypot(*(b - a)))
            n_sub = max(1, int(math.ceil(seg / max_spacing_km)))
            ts = np.linspace(0.0, 1.0, n_sub + 1)[:-1]  # drop b; added next
            pieces.append(a[None, :] + ts[:, None] * (b - a)[None, :])
        pieces.append(self.positions[-1][None, :])
        return Trace(np.vstack(pieces))

    def subsample(self, every: int) -> "Trace":
        """Keep every ``every``-th sample (always keeping the last)."""
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        idx = list(range(0, self.n_points, every))
        if idx[-1] != self.n_points - 1:
            idx.append(self.n_points - 1)
        return Trace(self.positions[idx])

    def reversed(self) -> "Trace":
        return Trace(self.positions[::-1].copy())

    def __repr__(self) -> str:
        return (
            f"Trace(n_points={self.n_points}, "
            f"length_km={self.total_length:.3f})"
        )


@runtime_checkable
class MobilityModel(Protocol):
    """Anything that can generate a reproducible movement trace."""

    def generate(self, rng: np.random.Generator) -> Trace:
        """Produce one trace using the supplied generator."""
        ...
