"""Trace representation and the mobility-model protocol.

A :class:`Trace` is the common currency between the mobility models and
the simulator: an ordered sequence of 2-D positions (km) with helpers
for path length, densification (interpolated sub-sampling, which is how
the "received power along random walk" figures get their x-axis) and
geometric queries.

Mobility models implement :class:`MobilityModel`: ``generate(rng) ->
Trace``.  All randomness flows through an injected
``numpy.random.Generator`` so every experiment is reproducible from a
single integer seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

__all__ = ["Trace", "TraceBatch", "MobilityModel"]


@dataclass(frozen=True)
class Trace:
    """An ordered 2-D path in km.

    ``positions`` has shape ``(n, 2)`` with ``n >= 1``.  The first row
    is the start position (the paper's walks start at the origin).
    """

    positions: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(
                f"positions must have shape (n, 2), got {pos.shape}"
            )
        if pos.shape[0] < 1:
            raise ValueError("a trace needs at least one position")
        if not np.isfinite(pos).all():
            raise ValueError("trace positions must be finite")
        object.__setattr__(self, "positions", pos)

    # ------------------------------------------------------------------
    @classmethod
    def from_steps(
        cls, start: Iterable[float], deltas: np.ndarray
    ) -> "Trace":
        """Build a trace from a start point and ``(n, 2)`` displacement
        steps (the paper's Eq. 2 accumulation)."""
        start = np.asarray(list(start), dtype=float)
        deltas = np.atleast_2d(np.asarray(deltas, dtype=float))
        if deltas.size == 0:
            return cls(start[None, :])
        if deltas.shape[1] != 2:
            raise ValueError(f"deltas must have shape (n, 2), got {deltas.shape}")
        pos = np.vstack([start[None, :], start[None, :] + np.cumsum(deltas, axis=0)])
        return cls(pos)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.positions.shape[0]

    def __len__(self) -> int:
        return self.n_points

    @property
    def start(self) -> np.ndarray:
        return self.positions[0]

    @property
    def end(self) -> np.ndarray:
        return self.positions[-1]

    def step_lengths(self) -> np.ndarray:
        """``(n-1,)`` segment lengths in km."""
        d = np.diff(self.positions, axis=0)
        return np.sqrt((d * d).sum(axis=1))

    def headings(self) -> np.ndarray:
        """``(n-1,)`` segment headings in radians."""
        d = np.diff(self.positions, axis=0)
        return np.arctan2(d[:, 1], d[:, 0])

    def cumulative_distance(self) -> np.ndarray:
        """``(n,)`` distance walked up to each sample (starts at 0)."""
        return np.concatenate([[0.0], np.cumsum(self.step_lengths())])

    @property
    def total_length(self) -> float:
        return float(self.step_lengths().sum())

    def distance_to(self, point: Iterable[float]) -> np.ndarray:
        """``(n,)`` distance of each sample to a fixed point."""
        p = np.asarray(list(point), dtype=float)
        d = self.positions - p[None, :]
        return np.sqrt((d * d).sum(axis=1))

    # ------------------------------------------------------------------
    def densify(self, max_spacing_km: float) -> "Trace":
        """Insert interpolated samples so that no segment exceeds
        ``max_spacing_km``.

        The endpoints of every original segment are preserved, so the
        densified trace visits exactly the same way-points; this is the
        sampling used for the "received power along random walk" figures
        and for the FLC's periodic measurements.
        """
        if max_spacing_km <= 0 or not math.isfinite(max_spacing_km):
            raise ValueError(
                f"max_spacing_km must be positive, got {max_spacing_km}"
            )
        if self.n_points == 1:
            return Trace(self.positions.copy())
        pieces: list[np.ndarray] = []
        for k in range(self.n_points - 1):
            a = self.positions[k]
            b = self.positions[k + 1]
            seg = float(np.hypot(*(b - a)))
            n_sub = max(1, int(math.ceil(seg / max_spacing_km)))
            ts = np.linspace(0.0, 1.0, n_sub + 1)[:-1]  # drop b; added next
            pieces.append(a[None, :] + ts[:, None] * (b - a)[None, :])
        pieces.append(self.positions[-1][None, :])
        return Trace(np.vstack(pieces))

    def subsample(self, every: int) -> "Trace":
        """Keep every ``every``-th sample (always keeping the last)."""
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        idx = list(range(0, self.n_points, every))
        if idx[-1] != self.n_points - 1:
            idx.append(self.n_points - 1)
        return Trace(self.positions[idx])

    def reversed(self) -> "Trace":
        return Trace(self.positions[::-1].copy())

    def __repr__(self) -> str:
        return (
            f"Trace(n_points={self.n_points}, "
            f"length_km={self.total_length:.3f})"
        )


@dataclass(frozen=True)
class TraceBatch:
    """``n_traces`` paths in padded lockstep form — the currency of the
    batch simulation engine.

    ``positions`` has shape ``(n_traces, max_points, 2)``; trace ``i``
    occupies rows ``[0, lengths[i])``.  Rows beyond a trace's length are
    padded by repeating its final position, which keeps every vectorised
    kernel (path loss, cumulative distance) finite — consumers mask by
    ``lengths`` instead of checking for sentinels.
    """

    positions: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 3 or pos.shape[2] != 2:
            raise ValueError(
                f"positions must have shape (n, t, 2), got {pos.shape}"
            )
        if not np.isfinite(pos).all():
            raise ValueError("batch positions must be finite")
        lengths = np.asarray(self.lengths, dtype=np.intp)
        if lengths.shape != (pos.shape[0],):
            raise ValueError(
                f"lengths must be ({pos.shape[0]},), got {lengths.shape}"
            )
        if pos.shape[0] < 1:
            raise ValueError("a batch needs at least one trace")
        if lengths.min(initial=1) < 1 or lengths.max(initial=1) > pos.shape[1]:
            raise ValueError(
                f"lengths must lie in [1, {pos.shape[1]}], got "
                f"[{lengths.min()}, {lengths.max()}]"
            )
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "lengths", lengths)

    # ------------------------------------------------------------------
    @property
    def n_traces(self) -> int:
        return self.positions.shape[0]

    @property
    def max_points(self) -> int:
        return self.positions.shape[1]

    def __len__(self) -> int:
        return self.n_traces

    def trace(self, i: int) -> Trace:
        """Trace ``i`` as a scalar :class:`Trace` (padding stripped)."""
        return Trace(self.positions[i, : self.lengths[i]].copy())

    def traces(self) -> list[Trace]:
        return [self.trace(i) for i in range(self.n_traces)]

    # ------------------------------------------------------------------
    @classmethod
    def from_traces(cls, traces: Iterable[Trace]) -> "TraceBatch":
        """Pad a collection of scalar traces into one batch.

        Each trace's samples are copied verbatim (bit-identical to the
        originals); shorter traces are padded by repeating their final
        position.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("from_traces needs at least one trace")
        lengths = np.array([t.n_points for t in traces], dtype=np.intp)
        t_max = int(lengths.max())
        pos = np.empty((len(traces), t_max, 2))
        for i, t in enumerate(traces):
            pos[i, : t.n_points] = t.positions
            pos[i, t.n_points :] = t.positions[-1]
        return cls(pos, lengths)

    @classmethod
    def from_model(
        cls, model: "MobilityModel", rng: np.random.Generator, n_traces: int
    ) -> "TraceBatch":
        """``n_traces`` independent walks from any mobility model.

        Models that implement a native ``generate_batch`` (e.g.
        :class:`~repro.mobility.random_walk.RandomWalk`) take their fully
        vectorised path; everything else falls back to one spawned child
        stream per trace, which keeps the batch reproducible from the
        parent generator alone.
        """
        if n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {n_traces}")
        native = getattr(model, "generate_batch", None)
        if callable(native):
            return native(rng, n_traces)
        return cls.from_traces(
            model.generate(child) for child in rng.spawn(n_traces)
        )

    # ------------------------------------------------------------------
    def densify(self, max_spacing_km: float) -> "TraceBatch":
        """Per-trace :meth:`Trace.densify`, re-padded into a batch.

        Delegating to the scalar implementation keeps the batch samples
        bit-identical to what the scalar pipeline sees for the same
        walks — the property the batch/scalar equivalence tests pin.
        """
        return TraceBatch.from_traces(
            t.densify(max_spacing_km) for t in self.traces()
        )

    def cumulative_distances(self) -> np.ndarray:
        """``(n_traces, max_points)`` walked distance per sample.

        Padding rows repeat the final position, so the padded tail of
        each row is constant at the trace's total length.
        """
        d = np.diff(self.positions, axis=1)
        # same float expression as Trace.step_lengths so batch distances
        # are bit-identical to the per-trace scalar path
        steps = np.sqrt((d * d).sum(axis=2))
        out = np.zeros((self.n_traces, self.max_points))
        np.cumsum(steps, axis=1, out=out[:, 1:])
        return out

    def __repr__(self) -> str:
        return (
            f"TraceBatch(n_traces={self.n_traces}, "
            f"max_points={self.max_points})"
        )


@runtime_checkable
class MobilityModel(Protocol):
    """Anything that can generate a reproducible movement trace."""

    def generate(self, rng: np.random.Generator) -> Trace:
        """Produce one trace using the supplied generator."""
        ...
