"""Manhattan-grid mobility (extension model).

The MS moves along an axis-aligned street grid: each leg runs along one
axis for a multiple of the block size, then turns (or continues) with
configurable probabilities.  Street-constrained motion crosses hexagonal
cell boundaries obliquely, which is a classically hard case for
hysteresis handover — included for the X1 comparison workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import Trace

__all__ = ["ManhattanGrid"]

# unit direction per heading index: 0=E, 1=N, 2=W, 3=S
_DIRS = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])


@dataclass(frozen=True)
class ManhattanGrid:
    """Street-grid walk.

    Parameters
    ----------
    n_legs:
        Number of street segments walked.
    block_km:
        Block edge length; each leg covers 1..``max_blocks`` blocks.
    max_blocks:
        Maximum blocks per leg.
    p_turn:
        Probability of turning left/right at an intersection (split
        evenly); otherwise the MS continues straight.  U-turns never
        happen, as in the standard Manhattan model.
    start:
        Start position (snapped conceptually to an intersection).
    """

    n_legs: int = 20
    block_km: float = 0.25
    max_blocks: int = 4
    p_turn: float = 0.5
    start: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.n_legs < 1:
            raise ValueError(f"n_legs must be >= 1, got {self.n_legs}")
        if self.block_km <= 0 or not math.isfinite(self.block_km):
            raise ValueError(f"block_km must be positive, got {self.block_km}")
        if self.max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {self.max_blocks}")
        if not (0.0 <= self.p_turn <= 1.0):
            raise ValueError(f"p_turn must be in [0, 1], got {self.p_turn}")

    def generate(self, rng: np.random.Generator) -> Trace:
        if not isinstance(rng, np.random.Generator):
            raise TypeError("generate() expects a numpy Generator")
        heading = int(rng.integers(0, 4))
        deltas = np.empty((self.n_legs, 2))
        for k in range(self.n_legs):
            if k > 0 and rng.random() < self.p_turn:
                # left or right, never a U-turn
                heading = (heading + (1 if rng.random() < 0.5 else 3)) % 4
            blocks = int(rng.integers(1, self.max_blocks + 1))
            deltas[k] = _DIRS[heading] * (blocks * self.block_km)
        return Trace.from_steps(self.start, deltas)

    def generate_seeded(self, seed: int) -> Trace:
        return self.generate(np.random.default_rng(seed))
