"""Random-waypoint mobility (extension model).

Not used by the paper's own evaluation; included for the X1 baseline
comparison so the fuzzy-vs-conventional result can be shown to be
robust to the mobility law, and as a realistic workload for the
examples.  The MS repeatedly picks a uniform destination inside a
rectangular region and travels there in a straight line; way-points are
emitted at each destination, and :meth:`Trace.densify` supplies
intermediate measurement samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import Trace

__all__ = ["RandomWaypoint"]


@dataclass(frozen=True)
class RandomWaypoint:
    """Random-waypoint walk in a rectangular region.

    Parameters
    ----------
    n_waypoints:
        Number of destinations to visit.
    region_km:
        ``(xmin, xmax, ymin, ymax)`` sampling region.
    start:
        Start position; defaults to the region centre.
    """

    n_waypoints: int = 10
    region_km: tuple[float, float, float, float] = (-3.0, 3.0, -3.0, 3.0)
    start: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.n_waypoints < 1:
            raise ValueError(f"n_waypoints must be >= 1, got {self.n_waypoints}")
        xmin, xmax, ymin, ymax = self.region_km
        if not (xmin < xmax and ymin < ymax):
            raise ValueError(f"degenerate region {self.region_km}")
        for v in self.region_km:
            if not math.isfinite(v):
                raise ValueError(f"region bounds must be finite: {self.region_km}")
        if self.start is not None:
            sx, sy = self.start
            if not (xmin <= sx <= xmax and ymin <= sy <= ymax):
                raise ValueError(
                    f"start {self.start} lies outside region {self.region_km}"
                )

    def generate(self, rng: np.random.Generator) -> Trace:
        if not isinstance(rng, np.random.Generator):
            raise TypeError("generate() expects a numpy Generator")
        xmin, xmax, ymin, ymax = self.region_km
        if self.start is None:
            start = np.array([0.5 * (xmin + xmax), 0.5 * (ymin + ymax)])
        else:
            start = np.asarray(self.start, dtype=float)
        xs = rng.uniform(xmin, xmax, self.n_waypoints)
        ys = rng.uniform(ymin, ymax, self.n_waypoints)
        pos = np.vstack([start[None, :], np.column_stack([xs, ys])])
        return Trace(pos)

    def generate_seeded(self, seed: int) -> Trace:
        return self.generate(np.random.default_rng(seed))
