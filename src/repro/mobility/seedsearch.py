"""Seed search: reproduce the paper's walk *shapes* with our RNG.

The paper's ``iseed = 100`` and ``iseed = 200`` walks come from the
authors' (unpublished) random-number generator, so the literal seeds
mean nothing to NumPy's PCG64.  What matters for the evaluation is the
walk's *relationship to the cell layout* (DESIGN.md substitution #1):

* Fig. 7 (``iseed=100``): the MS skirts a cell boundary and re-enters
  its original cell — ``(0,0) → B → (0,0) → C`` — the ping-pong trap;
* Fig. 8 (``iseed=200``): the MS marches through neighbouring cells —
  ``(0,0) → A → B → A`` with ``A, B ≠ (0,0)`` — three genuine
  handovers.

This module searches seeds until a walk's deduplicated cell sequence
matches such a pattern.  The experiments layer freezes the discovered
seeds (``repro.experiments.scenarios``) so results stay bit-stable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..geometry.layout import CellLayout
from .base import MobilityModel, Trace

__all__ = [
    "cell_sequence_of",
    "is_pingpong_sequence",
    "is_crossing_sequence",
    "find_seed",
    "SeedSearchError",
]

Cell = tuple[int, int]


class SeedSearchError(RuntimeError):
    """No seed matching the predicate was found within the budget."""


def cell_sequence_of(
    trace: Trace, layout: CellLayout, max_spacing_km: float = 0.05
) -> list[Cell]:
    """Deduplicated cell-visit sequence of a trace.

    The trace is densified first so that brief cuts through a cell corner
    are not missed between way-points.
    """
    dense = trace.densify(max_spacing_km)
    return layout.cell_sequence(dense.positions)


def is_pingpong_sequence(seq: Sequence[Cell], home: Cell = (0, 0)) -> bool:
    """True for Fig.-7-style sequences: leave home, return, leave again.

    Formally ``home → X → home → Y`` with ``X ≠ home ≠ Y`` as a prefix
    of the sequence (the paper's walk is exactly 4 long:
    ``(0,0) → (2,-1) → (0,0) → (1,-2)``).
    """
    seq = [tuple(c) for c in seq]
    return (
        len(seq) == 4
        and seq[0] == tuple(home)
        and seq[1] != tuple(home)
        and seq[2] == tuple(home)
        and seq[3] != tuple(home)
        and seq[3] != seq[1]
    )


def is_crossing_sequence(seq: Sequence[Cell], home: Cell = (0, 0)) -> bool:
    """True for Fig.-8-style sequences: ``home → A → B → A`` with three
    boundary crossings, never returning home (the paper's walk is
    ``(0,0) → (-1,2) → (-2,1) → (-1,2)``)."""
    seq = [tuple(c) for c in seq]
    return (
        len(seq) == 4
        and seq[0] == tuple(home)
        and seq[1] != tuple(home)
        and seq[2] not in (tuple(home), seq[1])
        and seq[3] == seq[1]
    )


def find_seed(
    model: MobilityModel,
    layout: CellLayout,
    predicate: Callable[[list[Cell]], bool],
    start_seed: int = 0,
    max_tries: int = 200_000,
    max_spacing_km: float = 0.05,
) -> int:
    """Smallest seed >= ``start_seed`` whose walk satisfies ``predicate``.

    Raises :class:`SeedSearchError` after ``max_tries`` attempts — a
    predicate that can never hold (e.g. requiring a cell outside the
    layout) fails loudly instead of spinning forever.
    """
    if max_tries < 1:
        raise ValueError(f"max_tries must be >= 1, got {max_tries}")
    for seed in range(start_seed, start_seed + max_tries):
        trace = model.generate(np.random.default_rng(seed))
        if predicate(cell_sequence_of(trace, layout, max_spacing_km)):
            return seed
    raise SeedSearchError(
        f"no seed in [{start_seed}, {start_seed + max_tries}) satisfies "
        f"the predicate for {model!r}"
    )
