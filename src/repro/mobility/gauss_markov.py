"""Gauss–Markov mobility (extension model).

A tunable-memory walk: velocity at step ``k`` blends the previous
velocity, a long-run mean and Gaussian noise,

``v_k = α v_{k-1} + (1-α) v̄ + sqrt(1-α²) σ w_k``,

so ``α → 0`` degenerates to the paper's memoryless random walk and
``α → 1`` to straight-line motion.  Used by the ablation benches to
probe how handover algorithms respond to motion persistence — ping-pong
is worst for jittery (low-α) motion near a boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import Trace

__all__ = ["GaussMarkov"]


@dataclass(frozen=True)
class GaussMarkov:
    """Gauss–Markov correlated-velocity walk.

    Parameters
    ----------
    n_steps:
        Number of movement steps.
    alpha:
        Memory parameter in [0, 1].
    mean_speed_km:
        Long-run mean step length (per step).
    mean_heading_rad:
        Long-run mean heading.
    sigma_km:
        Per-component innovation scale.
    start:
        Start position in km.
    """

    n_steps: int = 20
    alpha: float = 0.75
    mean_speed_km: float = 0.6
    mean_heading_rad: float = 0.0
    sigma_km: float = 0.25
    start: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {self.n_steps}")
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.mean_speed_km <= 0:
            raise ValueError(
                f"mean_speed_km must be positive, got {self.mean_speed_km}"
            )
        if self.sigma_km < 0:
            raise ValueError(f"sigma_km must be >= 0, got {self.sigma_km}")
        if not math.isfinite(self.mean_heading_rad):
            raise ValueError("mean_heading_rad must be finite")

    def generate(self, rng: np.random.Generator) -> Trace:
        if not isinstance(rng, np.random.Generator):
            raise TypeError("generate() expects a numpy Generator")
        mean_v = self.mean_speed_km * np.array(
            [math.cos(self.mean_heading_rad), math.sin(self.mean_heading_rad)]
        )
        a = self.alpha
        noise_scale = math.sqrt(max(0.0, 1.0 - a * a)) * self.sigma_km
        v = mean_v.copy()
        deltas = np.empty((self.n_steps, 2))
        for k in range(self.n_steps):
            w = rng.normal(0.0, 1.0, 2)
            v = a * v + (1.0 - a) * mean_v + noise_scale * w
            deltas[k] = v
        return Trace.from_steps(self.start, deltas)

    def generate_seeded(self, seed: int) -> Trace:
        return self.generate(np.random.default_rng(seed))
