"""Mobility substrate (S4).

The paper's Monte-Carlo random walk (Sec. 3) plus extension models
(random waypoint, Gauss–Markov, Manhattan grid) and the seed-search
utility that reproduces the paper's walk shapes with NumPy's RNG.
"""

from .base import MobilityModel, Trace, TraceBatch
from .random_walk import RandomWalk
from .waypoint import RandomWaypoint
from .gauss_markov import GaussMarkov
from .manhattan import ManhattanGrid
from .seedsearch import (
    SeedSearchError,
    cell_sequence_of,
    find_seed,
    is_crossing_sequence,
    is_pingpong_sequence,
)

__all__ = [
    "Trace",
    "TraceBatch",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "GaussMarkov",
    "ManhattanGrid",
    "cell_sequence_of",
    "find_seed",
    "is_pingpong_sequence",
    "is_crossing_sequence",
    "SeedSearchError",
]
