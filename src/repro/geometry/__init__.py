"""Hexagonal cellular geometry (substrate S2).

Implements the paper's Fig. 6 ``(i, j)`` lattice scheme — neighbour
offsets ``±(1,1)``, ``±(2,-1)``, ``±(1,-2)`` — with Cartesian embedding,
point→cell assignment, ring enumeration and boundary geometry, plus the
finite :class:`CellLayout` used by the simulator.
"""

from .hexgrid import NEIGHBOR_OFFSETS, SQRT3, HexGrid, hex_distance
from .layout import CellLayout

__all__ = ["HexGrid", "CellLayout", "hex_distance", "NEIGHBOR_OFFSETS", "SQRT3"]
