"""The paper's hexagonal-lattice coordinate scheme (Fig. 6).

Cells are addressed by integer pairs ``(i, j)``.  Figure 6 of the paper
lists the six neighbours of cell ``(i, j)`` as::

    (i+1, j+1)  (i+2, j-1)  (i+1, j-2)
    (i-1, j-1)  (i-2, j+1)  (i-1, j+2)

i.e. the neighbour offsets are ``±(1, 1)``, ``±(2, -1)`` and
``±(1, -2)``.  Solving for a planar embedding in which all six
neighbours sit at the same centre-to-centre spacing ``d`` and 60° apart
gives the basis used throughout this module::

    centre(i, j) = ( d·i/2 ,  d·√3·(i + 2j)/6 )

so that ``(2, -1)`` lies due east, ``(1, 1)`` at 60° and ``(1, -2)`` at
-60°.  Cells are *pointy-top* hexagons with circumradius
``R = d/√3`` (the paper's "cell radius") and apothem ``d/2``.

Everything here is pure lattice geometry; base stations and radio live
one layer up (:mod:`repro.geometry.layout`, :mod:`repro.radio`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "NEIGHBOR_OFFSETS",
    "SQRT3",
    "HexGrid",
    "hex_distance",
]

SQRT3 = math.sqrt(3.0)

#: The six neighbour offsets of Fig. 6, counter-clockwise from east.
NEIGHBOR_OFFSETS: tuple[tuple[int, int], ...] = (
    (2, -1),   # east
    (1, 1),    # north-east
    (-1, 2),   # north-west
    (-2, 1),   # west
    (-1, -1),  # south-west
    (1, -2),   # south-east
)

#: Unit normals of the six hexagon edges (pointy-top), matching the
#: neighbour directions above.
_EDGE_NORMALS = np.array(
    [
        [math.cos(k * math.pi / 3.0), math.sin(k * math.pi / 3.0)]
        for k in range(6)
    ]
)


def _paper_to_axial(i: int, j: int) -> tuple[int, int]:
    """Map paper coordinates to standard axial hex coordinates.

    In the paper scheme the neighbour offsets are ±(1,1), ±(2,-1),
    ±(1,-2); dividing the lattice map by the sub-lattice basis
    ``e_q = (2,-1)``, ``e_r = (1,1)`` yields axial coordinates with unit
    neighbour steps.  Solving ``(i, j) = q·(2,-1) + r·(1,1)`` gives
    ``q = (i - j)/3`` and ``r = (i + 2j)/3`` — always integral for valid
    lattice points.
    """
    q3 = i - j
    r3 = i + 2 * j
    if q3 % 3 or r3 % 3:
        raise ValueError(
            f"({i}, {j}) is not a valid paper lattice coordinate "
            "(i - j and i + 2j must both be divisible by 3)"
        )
    return q3 // 3, r3 // 3


def _axial_to_paper(q: int, r: int) -> tuple[int, int]:
    """Inverse of :func:`_paper_to_axial`."""
    return 2 * q + r, r - q


def hex_distance(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Hex (grid-walk) distance between two paper-coordinate cells."""
    qa, ra = _paper_to_axial(*a)
    qb, rb = _paper_to_axial(*b)
    dq, dr = qa - qb, ra - rb
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


class HexGrid:
    """Geometry of a hexagonal cell lattice in the paper's coordinates.

    Parameters
    ----------
    cell_radius_km:
        The hexagon circumradius ``R`` in km (paper Table 2: 1 or 2 km).
    """

    def __init__(self, cell_radius_km: float = 2.0) -> None:
        if not (cell_radius_km > 0 and math.isfinite(cell_radius_km)):
            raise ValueError(
                f"cell_radius_km must be positive and finite, got {cell_radius_km}"
            )
        self.cell_radius_km = float(cell_radius_km)
        #: centre-to-centre spacing of adjacent cells
        self.spacing_km = SQRT3 * self.cell_radius_km
        #: apothem (centre-to-edge distance)
        self.apothem_km = 0.5 * self.spacing_km

    # ------------------------------------------------------------------
    # coordinate transforms
    # ------------------------------------------------------------------
    def center(self, cell: tuple[int, int]) -> np.ndarray:
        """Cartesian centre (km) of a cell (= its base-station site)."""
        i, j = cell
        _paper_to_axial(i, j)  # validates the coordinate
        d = self.spacing_km
        return np.array([d * i / 2.0, d * SQRT3 * (i + 2.0 * j) / 6.0])

    def centers(self, cells: Sequence[tuple[int, int]]) -> np.ndarray:
        """``(n, 2)`` array of centres for many cells."""
        if len(cells) == 0:
            return np.zeros((0, 2))
        arr = np.asarray([self.center(c) for c in cells])
        return arr

    def fractional_coords(self, points: np.ndarray) -> np.ndarray:
        """Invert the centre map: Cartesian points → fractional (i, j).

        Parameters
        ----------
        points:
            ``(n, 2)`` or ``(2,)`` array in km.

        Returns
        -------
        ``(n, 2)`` float array of fractional paper coordinates.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        d = self.spacing_km
        i_f = 2.0 * pts[:, 0] / d
        j_f = 3.0 * pts[:, 1] / (d * SQRT3) - pts[:, 0] / d
        return np.column_stack([i_f, j_f])

    # ------------------------------------------------------------------
    # point -> cell
    # ------------------------------------------------------------------
    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Map Cartesian point(s) to containing cell(s).

        Uses nearest-centre assignment, which is exact for a hexagonal
        Voronoi lattice.  Candidate lattice points around the fractional
        coordinate are enumerated and the closest centre wins; boundary
        points resolve deterministically to the lowest-(i, j) candidate
        among equals (NumPy argmin tie-breaking on the ordered candidate
        list).

        Parameters
        ----------
        points:
            ``(n, 2)`` or ``(2,)`` array in km.

        Returns
        -------
        ``(n, 2)`` int array of paper cell coordinates (or ``(2,)`` for a
        single point).
        """
        single = np.asarray(points).ndim == 1
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        frac = self.fractional_coords(pts)
        base_i = np.floor(frac[:, 0]).astype(np.intp)
        base_j = np.floor(frac[:, 1]).astype(np.intp)

        d = self.spacing_km
        best_d2 = np.full(pts.shape[0], np.inf)
        best_ij = np.zeros((pts.shape[0], 2), dtype=np.intp)
        # 4x4 candidate window around the floor guarantees coverage of the
        # Voronoi cell regardless of the basis skew.
        for di in range(-1, 3):
            for dj in range(-1, 3):
                ci = base_i + di
                cj = base_j + dj
                # only true lattice points qualify
                valid = ((ci - cj) % 3 == 0) & ((ci + 2 * cj) % 3 == 0)
                if not valid.any():
                    continue
                cx = d * ci / 2.0
                cy = d * SQRT3 * (ci + 2.0 * cj) / 6.0
                d2 = (pts[:, 0] - cx) ** 2 + (pts[:, 1] - cy) ** 2
                better = valid & (d2 < best_d2 - 1e-12)
                best_d2 = np.where(better, d2, best_d2)
                best_ij[better, 0] = ci[better]
                best_ij[better, 1] = cj[better]
        if single:
            return best_ij[0]
        return best_ij

    def contains(self, cell: tuple[int, int], point: np.ndarray) -> bool:
        """True if ``point`` lies in ``cell`` (boundary counts as inside)."""
        rel = np.asarray(point, dtype=float) - self.center(cell)
        proj = _EDGE_NORMALS @ rel
        return bool(np.max(proj) <= self.apothem_km + 1e-9)

    def boundary_distance(self, cell: tuple[int, int], points: np.ndarray) -> np.ndarray:
        """Signed distance (km) from point(s) to the cell boundary.

        Positive inside the hexagon, negative outside; zero on an edge.
        """
        single = np.asarray(points).ndim == 1
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        rel = pts - self.center(cell)[None, :]
        proj = rel @ _EDGE_NORMALS.T  # (n, 6)
        dist = self.apothem_km - proj.max(axis=1)
        if single:
            return dist[0]
        return dist

    # ------------------------------------------------------------------
    # neighbourhood / enumeration
    # ------------------------------------------------------------------
    def neighbors(self, cell: tuple[int, int]) -> list[tuple[int, int]]:
        """The six adjacent cells, counter-clockwise from east (Fig. 6)."""
        i, j = cell
        _paper_to_axial(i, j)
        return [(i + di, j + dj) for di, dj in NEIGHBOR_OFFSETS]

    def ring(self, center: tuple[int, int], k: int) -> list[tuple[int, int]]:
        """All cells at hex distance exactly ``k`` from ``center``."""
        if k < 0:
            raise ValueError(f"ring index must be >= 0, got {k}")
        if k == 0:
            return [tuple(center)]
        out: list[tuple[int, int]] = []
        # walk the ring: start k steps east, then turn through the other
        # five directions, k steps each
        ci, cj = center
        i = ci + k * NEIGHBOR_OFFSETS[0][0]
        j = cj + k * NEIGHBOR_OFFSETS[0][1]
        for leg in (2, 3, 4, 5, 0, 1):
            di, dj = NEIGHBOR_OFFSETS[leg]
            for _ in range(k):
                out.append((i, j))
                i += di
                j += dj
        return out

    def disk(self, center: tuple[int, int], k: int) -> list[tuple[int, int]]:
        """All cells at hex distance <= ``k``, ring by ring."""
        out: list[tuple[int, int]] = []
        for r in range(k + 1):
            out.extend(self.ring(center, r))
        return out

    def vertices(self, cell: tuple[int, int]) -> np.ndarray:
        """``(6, 2)`` hexagon corner coordinates (km), CCW from 30°."""
        c = self.center(cell)
        angles = np.deg2rad(30.0 + 60.0 * np.arange(6))
        return c[None, :] + self.cell_radius_km * np.column_stack(
            [np.cos(angles), np.sin(angles)]
        )

    def shared_edge_midpoint(
        self, cell_a: tuple[int, int], cell_b: tuple[int, int]
    ) -> np.ndarray:
        """Midpoint of the edge shared by two adjacent cells (km)."""
        if hex_distance(cell_a, cell_b) != 1:
            raise ValueError(f"cells {cell_a} and {cell_b} are not adjacent")
        return 0.5 * (self.center(cell_a) + self.center(cell_b))

    def corner_point(
        self,
        cell_a: tuple[int, int],
        cell_b: tuple[int, int],
        cell_c: tuple[int, int],
    ) -> np.ndarray:
        """The vertex shared by three mutually adjacent cells (km).

        This is the paper's "boundary of the 3 cells" measurement-point
        construction (Figs. 12/13).
        """
        pairs = [(cell_a, cell_b), (cell_b, cell_c), (cell_a, cell_c)]
        for p, q in pairs:
            if hex_distance(p, q) != 1:
                raise ValueError(
                    f"cells {cell_a}, {cell_b}, {cell_c} are not mutually adjacent"
                )
        # the common vertex is the circumcentre of the three cell centres
        centers = self.centers([cell_a, cell_b, cell_c])
        return centers.mean(axis=0)

    def __repr__(self) -> str:
        return f"HexGrid(cell_radius_km={self.cell_radius_km:g})"
