"""Cell layout: base-station sites on a hex grid.

:class:`CellLayout` instantiates a finite patch of the infinite lattice
(a centre cell plus ``rings`` rings of neighbours — the paper's Fig. 6
draws the centre plus one ring) and provides the site/assignment queries
the simulator needs: nearest BS, per-BS distance matrices, neighbour
lists, and extent for plotting.
"""

from __future__ import annotations

import numpy as np

from .hexgrid import HexGrid

__all__ = ["CellLayout"]


class CellLayout:
    """A finite hexagonal cellular layout with one BS per cell centre.

    Parameters
    ----------
    cell_radius_km:
        Hexagon circumradius (paper Table 2: 1 or 2 km).
    rings:
        Number of neighbour rings around the centre cell ``(0, 0)``.
        ``rings=2`` (19 cells) comfortably contains both paper walks.
    """

    def __init__(self, cell_radius_km: float = 2.0, rings: int = 2) -> None:
        if rings < 0:
            raise ValueError(f"rings must be >= 0, got {rings}")
        self.grid = HexGrid(cell_radius_km)
        self.rings = int(rings)
        self.cells: tuple[tuple[int, int], ...] = tuple(
            self.grid.disk((0, 0), rings)
        )
        self._index: dict[tuple[int, int], int] = {
            c: k for k, c in enumerate(self.cells)
        }
        #: ``(n_cells, 2)`` BS positions in km
        self.bs_positions: np.ndarray = self.grid.centers(self.cells)
        # lazily built padded adjacency (see neighbor_table)
        self._neighbor_table: (
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ) = None

    # ------------------------------------------------------------------
    @property
    def cell_radius_km(self) -> float:
        return self.grid.cell_radius_km

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell: tuple[int, int]) -> bool:
        return tuple(cell) in self._index

    def index_of(self, cell: tuple[int, int]) -> int:
        """Row index of a cell in :attr:`bs_positions`."""
        try:
            return self._index[tuple(cell)]
        except KeyError:
            raise KeyError(
                f"cell {tuple(cell)} is outside this {self.rings}-ring layout"
            ) from None

    def cell_at(self, index: int) -> tuple[int, int]:
        return self.cells[index]

    def bs_position(self, cell: tuple[int, int]) -> np.ndarray:
        """BS site of a cell (km)."""
        return self.bs_positions[self.index_of(cell)]

    # ------------------------------------------------------------------
    # spatial queries
    # ------------------------------------------------------------------
    def distances_to(self, points: np.ndarray) -> np.ndarray:
        """Distance from every point to every BS.

        Parameters
        ----------
        points:
            ``(n, 2)`` or ``(2,)`` array in km.

        Returns
        -------
        ``(n, n_cells)`` distances in km (``(n_cells,)`` for one point).
        """
        single = np.asarray(points).ndim == 1
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != 2:
            raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
        diff = pts[:, None, :] - self.bs_positions[None, :, :]
        d = np.sqrt((diff**2).sum(axis=2))
        if single:
            return d[0]
        return d

    def nearest_cell(self, points: np.ndarray) -> np.ndarray:
        """Index of the geometrically nearest BS for each point."""
        d = np.atleast_2d(self.distances_to(points))
        idx = d.argmin(axis=1)
        if np.asarray(points).ndim == 1:
            return idx[0]
        return idx

    def serving_cell(self, point: np.ndarray) -> tuple[int, int]:
        """The cell containing ``point`` (nearest-centre rule)."""
        return self.cells[int(self.nearest_cell(point))]

    def neighbors_of(self, cell: tuple[int, int]) -> list[tuple[int, int]]:
        """Adjacent cells that exist in this finite layout."""
        return [c for c in self.grid.neighbors(cell) if c in self]

    def adjacency(self) -> dict[tuple[int, int], list[tuple[int, int]]]:
        """Full adjacency map of the layout."""
        return {c: self.neighbors_of(c) for c in self.cells}

    def neighbor_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded adjacency of the layout, in array form.

        Returns ``(indices, mask, degree)`` where ``indices`` is
        ``(n_cells, max_degree)`` BS indices in :meth:`neighbors_of`
        order (the order the batch simulator's target argmax tie-breaks
        on), ``mask`` flags real entries and ``degree`` counts them.

        The layout is immutable after construction, so the table is
        built once and cached — repeated :class:`BatchSimulator` runs
        over one layout (grid sweeps, sharded fleets) never rebuild it.
        Callers must treat the returned arrays as read-only.
        """
        if self._neighbor_table is None:
            lists = [
                [self.index_of(c) for c in self.neighbors_of(cell)]
                for cell in self.cells
            ]
            degree = np.array([len(l) for l in lists], dtype=np.intp)
            width = max(1, int(degree.max(initial=0)))
            indices = np.zeros((self.n_cells, width), dtype=np.intp)
            mask = np.zeros((self.n_cells, width), dtype=bool)
            for k, l in enumerate(lists):
                indices[k, : len(l)] = l
                mask[k, : len(l)] = True
            # the cache is shared by every simulator run on this layout;
            # enforce the read-only contract instead of documenting it
            for arr in (indices, mask, degree):
                arr.setflags(write=False)
            self._neighbor_table = (indices, mask, degree)
        return self._neighbor_table

    def extent_km(self, margin: float = 0.0) -> tuple[float, float, float, float]:
        """``(xmin, xmax, ymin, ymax)`` bounding box incl. cell area."""
        r = self.grid.cell_radius_km + margin
        xs = self.bs_positions[:, 0]
        ys = self.bs_positions[:, 1]
        return (
            float(xs.min() - r),
            float(xs.max() + r),
            float(ys.min() - r),
            float(ys.max() + r),
        )

    def cell_sequence(self, points: np.ndarray) -> list[tuple[int, int]]:
        """Deduplicated sequence of cells visited by a point sequence.

        Consecutive samples in the same cell collapse to one entry — this
        is the representation the paper uses to describe the walks
        ("the MS moves in the cells (0,0)→(2,-1)→(0,0)→(1,-2)").
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        idx = np.atleast_1d(self.nearest_cell(pts))
        seq: list[tuple[int, int]] = []
        for k in idx:
            c = self.cells[int(k)]
            if not seq or seq[-1] != c:
                seq.append(c)
        return seq

    def __repr__(self) -> str:
        return (
            f"CellLayout(cell_radius_km={self.cell_radius_km:g}, "
            f"rings={self.rings}, n_cells={self.n_cells})"
        )
