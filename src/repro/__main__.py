"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Enumerate the reproducible paper artefacts.
``show <id>``
    Regenerate and print one artefact (``table3``, ``figure9``, …).
``report``
    Regenerate everything (the full reproduction report).
``evaluate CSSP SSN DMB``
    One controller evaluation with the rule-level explanation.
``simulate {pingpong,crossing} [--speed V]``
    Run the full pipeline on a frozen paper scenario.
``fleet [--ues N] [--walks K] [--seed S] [--speeds V ...]
[--population MIX] [--shards N] [--workers W] [--hosts H:P,...]
[--backend B] [--flc-backend F] [--tile-epochs K]
[--checkpoint DIR] [--metrics-out PATH] [--heartbeat-interval S]
[--heartbeat-timeout S] [--max-retries N] [--no-serial-fallback]``
    Run a whole UE population through the vectorised batch engine —
    optionally partitioned into shards over a process pool or a set of
    ``repro worker`` socket hosts, on a chosen pathloss-kernel backend
    and FLC inference backend — and print the fleet-level quality
    metrics (identical for any shard count, worker pool or host list,
    and identical handover/ping-pong counts for any FLC backend).
    ``--population`` selects a named heterogeneous mix
    (pedestrians/vehicles/stationary cohorts, see
    :data:`repro.sim.population.POPULATION_MIXES`) and adds a
    per-cohort metrics breakdown.  ``--checkpoint DIR`` runs
    crash-safe: resumable state is snapshotted at epoch-tile
    boundaries and re-running the command after a kill resumes
    byte-identical; ``--heartbeat-*``/``--max-retries``/
    ``--no-serial-fallback`` tune the distributed executor's fault
    tolerance when ``--hosts`` is given.
``worker --listen HOST:PORT [--max-tasks N] [--die-after K]``
    Serve fleet shards (or any executor tasks) over TCP to a
    :class:`~repro.sim.distributed.DistributedExecutor` — the unit of
    a distributed fleet.  ``--listen host:0`` binds an ephemeral port;
    the worker announces ``listening on host:port`` on stdout.
    ``--die-after K`` arms fault injection: the process exits abruptly
    while handling its K-th task (the X17 fault-tolerance harness).
``serve --listen HOST:PORT [--deadline S] [--ring N] [--flc-backend F]``
    Run the streaming handover-decision service: per-UE measurement
    reports arrive as length-prefixed JSON/pickle frames, epochs close
    on the subscribed-fleet watermark (or the ``--deadline`` timer),
    and each closed epoch runs one batched FLC sweep — byte-identical
    decisions to the offline engine.  Announces ``serving on
    host:port`` on stdout.
``replay [--trace PATH | --record ...] [--connect H:P | --spawn]
[--verify] [--rate R] [--codec {json,pickle}]``
    Stream a recorded fleet trace through the service — in process by
    default, against a live server with ``--connect``, or against a
    freshly spawned ``repro serve`` subprocess with ``--spawn`` — and
    print the resulting fleet metrics.  ``--verify`` re-runs the trace
    through the offline batch engine and exits non-zero unless the two
    paths agree exactly.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import FuzzyHandoverSystem, build_handover_flc
from .fuzzy import (
    DEFAULT_FLC_BACKEND,
    FLC_BACKEND_ENV_VAR,
    resolve_flc_backend,
)
from .radio import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    resolve_backend,
)
from .experiments import (
    EXPERIMENTS,
    SCENARIO_CROSSING,
    SCENARIO_PINGPONG,
    FleetScenario,
    full_report,
    get_experiment,
)
from .sim import (
    PAPER_SPEEDS_KMH,
    POPULATION_MIXES,
    TILE_EPOCHS_ENV_VAR,
    SimulationParameters,
    run_trace,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fuzzy-based handover system (Barolli et al., ICPP-W 2008) — "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artefacts")

    p_show = sub.add_parser("show", help="regenerate one artefact")
    p_show.add_argument("artefact", choices=sorted(EXPERIMENTS))

    sub.add_parser("report", help="regenerate every artefact")

    p_eval = sub.add_parser(
        "evaluate", help="one FLC evaluation with explanation"
    )
    p_eval.add_argument("cssp", type=float, help="CSSP in dB")
    p_eval.add_argument("ssn", type=float, help="SSN in dB")
    p_eval.add_argument("dmb", type=float, help="DMB (distance / radius)")

    p_sim = sub.add_parser("simulate", help="run a frozen paper scenario")
    p_sim.add_argument("scenario", choices=["pingpong", "crossing"])
    p_sim.add_argument("--speed", type=float, default=0.0,
                       help="MS speed in km/h (default 0)")

    p_fleet = sub.add_parser(
        "fleet", help="run a UE population through the batch engine"
    )
    p_fleet.add_argument("--ues", type=int, default=100,
                         help="fleet size (default 100)")
    p_fleet.add_argument("--walks", type=int, default=None,
                         help="walk legs per UE (default 10; homogeneous "
                              "fleets only)")
    p_fleet.add_argument("--seed", type=int, default=1000,
                         help="base walk seed; UE i walks seed+i")
    p_fleet.add_argument("--speeds", type=float, nargs="+", default=None,
                         metavar="V",
                         help="speeds in km/h, cycled over the fleet "
                              "(default: the paper's 0..50 sweep; "
                              "homogeneous fleets only)")
    p_fleet.add_argument("--population", default=None,
                         choices=sorted(POPULATION_MIXES),
                         help="run a named heterogeneous mix instead of "
                              "the homogeneous random-walk fleet; each "
                              "cohort brings its own mobility model and "
                              "speed distribution, and the output adds "
                              "a per-cohort breakdown")
    p_fleet.add_argument("--shards", type=int, default=1,
                         help="partition the fleet into N shards "
                              "(default 1; metrics are identical for "
                              "any shard count)")
    p_fleet.add_argument("--workers", type=int, default=None,
                         help="process workers for sharded execution "
                              "(default: auto, CPUs-1 capped at the "
                              "shard count)")
    p_fleet.add_argument("--hosts", default=None, metavar="H:P,...",
                         help="comma-separated host:port addresses of "
                              "running `repro worker` processes; runs "
                              "the shards on the fault-tolerant "
                              "distributed executor instead of a local "
                              "pool (mutually exclusive with --workers; "
                              "metrics stay identical to the local run)")
    p_fleet.add_argument("--heartbeat-interval", type=float, default=None,
                         metavar="S",
                         help="distributed executor tuning (requires "
                              "--hosts): workers frame a heartbeat "
                              "every S seconds while computing")
    p_fleet.add_argument("--heartbeat-timeout", type=float, default=None,
                         metavar="S",
                         help="distributed executor tuning (requires "
                              "--hosts): declare a worker dead after S "
                              "seconds of heartbeat silence")
    p_fleet.add_argument("--max-retries", type=int, default=None,
                         metavar="N",
                         help="distributed executor tuning (requires "
                              "--hosts): reissue a transport-failed "
                              "shard at most N times before giving up")
    p_fleet.add_argument("--no-serial-fallback", action="store_true",
                         help="distributed executor tuning (requires "
                              "--hosts): fail the run when every worker "
                              "dies instead of finishing the remaining "
                              "shards serially in-process")
    p_fleet.add_argument("--checkpoint", default=None, metavar="DIR",
                         help="crash-safe mode: snapshot resumable "
                              "state into DIR/fleet.ckpt at epoch-tile "
                              "boundaries; re-running the same command "
                              "after a kill (even SIGKILL) resumes "
                              "from the last snapshot and produces "
                              "byte-identical metrics (homogeneous "
                              "fleets, in-process execution only)")
    p_fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="pickle the merged FleetMetrics to PATH "
                              "(exact-identity comparisons across "
                              "runs)")
    p_fleet.add_argument("--backend", default=None,
                         help="pathloss kernel backend: reference, "
                              "numpy, or numba/jax where installed "
                              f"(default: the {BACKEND_ENV_VAR} env "
                              f"var, then '{DEFAULT_BACKEND}'; "
                              "NumPy-family backends are "
                              "bit-identical).  Validated at first "
                              "use so the parser never probes the "
                              "optional accelerator imports")
    p_fleet.add_argument("--flc-backend", default=None,
                         help="FLC inference backend: reference, lut, "
                              "or numba where installed (default: the "
                              f"{FLC_BACKEND_ENV_VAR} env var, then "
                              f"'{DEFAULT_FLC_BACKEND}').  Compiled "
                              "kernels take the fuzzy controller off "
                              "the hot path; handover decisions are "
                              "identical on every backend.  Validated "
                              "at first use")
    p_fleet.add_argument("--tile-epochs", type=int, default=None,
                         metavar="K",
                         help="epoch-tile policy of the measurement "
                              "pipeline: 0 materialises the full power "
                              "cube, K >= 1 streams K-epoch tiles "
                              "(constant memory in the horizon, "
                              "byte-identical metrics).  Default: the "
                              f"{TILE_EPOCHS_ENV_VAR} env var, then "
                              "auto from the workload size")

    p_worker = sub.add_parser(
        "worker", help="serve fleet shards over TCP (distributed executor)"
    )
    p_worker.add_argument("--listen", default="127.0.0.1:0",
                          metavar="HOST:PORT",
                          help="address to bind (default 127.0.0.1:0 — "
                               "an ephemeral port, announced on stdout)")
    p_worker.add_argument("--max-tasks", type=int, default=None,
                          metavar="N",
                          help="exit cleanly after serving N tasks "
                               "(default: serve until terminated)")
    p_worker.add_argument("--die-after", type=int, default=None,
                          metavar="K",
                          help="fault injection: exit the process "
                               "abruptly while handling the K-th task "
                               "(exercises the client's shard-reissue "
                               "path; testing aid)")

    p_serve = sub.add_parser(
        "serve", help="run the streaming handover-decision service"
    )
    p_serve.add_argument("--listen", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="address to bind (default 127.0.0.1:0 — "
                              "an ephemeral port, announced on stdout "
                              "as 'serving on host:port')")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="S",
                         help="epoch deadline in seconds: force-close "
                              "the current epoch once reports have "
                              "been pending this long (default: close "
                              "on the fleet watermark only)")
    p_serve.add_argument("--ring", type=int, default=None, metavar="N",
                         help="per-UE report look-ahead window in "
                              "epochs (default 64)")
    p_serve.add_argument("--window-km", type=float, default=None,
                         help="ping-pong distance window in km")
    p_serve.add_argument("--outage-dbw", type=float, default=None,
                         help="outage sensitivity in dBW")
    p_serve.add_argument("--flc-backend", default=None,
                         help="FLC inference backend for the decision "
                              "sweep (reference, lut, or numba where "
                              "installed; decisions are identical on "
                              "every backend)")
    p_serve.add_argument("--silent-after", type=int, default=None,
                         metavar="M",
                         help="degraded mode: treat a subscribed UE as "
                              "silent after it misses M consecutive "
                              "deadline-forced epoch closes (default: "
                              "never)")
    p_serve.add_argument("--silent-policy", default="unsubscribe",
                         choices=["unsubscribe", "hold"],
                         help="what to do with a silent UE: drop it "
                              "from the epoch watermark (unsubscribe, "
                              "default) or keep replaying its last "
                              "seen report (hold)")

    p_replay = sub.add_parser(
        "replay", help="stream a recorded fleet trace through the service"
    )
    p_replay.add_argument("--trace", default=None, metavar="PATH",
                          help="a trace file saved by FleetTrace.save "
                               "(or by a previous --record --save run)")
    p_replay.add_argument("--record", action="store_true",
                          help="record a fresh trace instead of "
                               "loading one (see --ues/--walks/--seed/"
                               "--population/--fading)")
    p_replay.add_argument("--ues", type=int, default=8,
                          help="fleet size for --record (default 8)")
    p_replay.add_argument("--walks", type=int, default=3,
                          help="walk legs per UE for --record "
                               "(default 3; homogeneous fleets only)")
    p_replay.add_argument("--seed", type=int, default=1000,
                          help="base walk seed for --record")
    p_replay.add_argument("--population", default=None,
                          choices=sorted(POPULATION_MIXES),
                          help="record a named heterogeneous mix "
                               "instead of the homogeneous fleet")
    p_replay.add_argument("--fading", type=float, default=None,
                          metavar="SIGMA",
                          help="shadow-fading sigma in dB for --record "
                               "(default: no fading)")
    p_replay.add_argument("--save", default=None, metavar="PATH",
                          help="save the recorded trace for later "
                               "replays")
    p_replay.add_argument("--connect", default=None, metavar="HOST:PORT",
                          help="stream to a running `repro serve` "
                               "instead of the in-process service")
    p_replay.add_argument("--spawn", action="store_true",
                          help="spawn a `repro serve` subprocess and "
                               "stream to it over TCP (mutually "
                               "exclusive with --connect)")
    p_replay.add_argument("--codec", default="pickle",
                          choices=["json", "pickle"],
                          help="wire codec for TCP replays "
                               "(default pickle; JSON is the "
                               "language-neutral path and preserves "
                               "identity too)")
    p_replay.add_argument("--rate", type=float, default=None, metavar="R",
                          help="pace the stream at about R reports/s "
                               "(default: as fast as the socket "
                               "drains)")
    p_replay.add_argument("--verify", action="store_true",
                          help="re-run the trace through the offline "
                               "batch engine and exit non-zero unless "
                               "the streamed metrics match exactly")
    return parser


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import DecisionService, ServeServer
    from .serve.ring import DEFAULT_RING_CAPACITY
    from .sim.distributed import parse_address
    from .sim.metrics import DEFAULT_OUTAGE_DBW, DEFAULT_WINDOW_KM

    host, port = parse_address(args.listen)
    params = SimulationParameters()
    if args.flc_backend is not None:
        params = params.with_(flc_backend=args.flc_backend)
    if args.silent_after is not None and args.silent_after < 1:
        raise SystemExit(
            f"repro serve: error: --silent-after must be >= 1, "
            f"got {args.silent_after}"
        )
    if args.silent_after is not None and args.deadline is None:
        raise SystemExit(
            "repro serve: error: --silent-after counts missed deadline "
            "closes and requires --deadline"
        )
    service = DecisionService(
        params,
        window_km=(
            DEFAULT_WINDOW_KM if args.window_km is None else args.window_km
        ),
        outage_dbw=(
            DEFAULT_OUTAGE_DBW if args.outage_dbw is None else args.outage_dbw
        ),
        ring_capacity=(
            DEFAULT_RING_CAPACITY if args.ring is None else args.ring
        ),
        epoch_deadline_s=args.deadline,
        silent_after=args.silent_after,
        silent_policy=args.silent_policy,
    )

    async def _run() -> None:
        server = ServeServer(service, host, port)
        bound_host, bound_port = await server.start()
        print(f"serving on {bound_host}:{bound_port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_replay(parser, args) -> int:
    import asyncio

    from .serve import (
        identity_report,
        replay_in_process,
        replay_to_server,
        service_for_trace,
        spawned_server,
    )
    from .sim import (
        FleetSpec,
        FleetTrace,
        named_population,
        offline_reference_metrics,
        record_fleet_trace,
    )

    if args.connect is not None and args.spawn:
        parser.error("--connect and --spawn are mutually exclusive")
    if args.record == (args.trace is not None):
        parser.error("exactly one of --trace or --record is required")

    if args.record:
        params = SimulationParameters()
        if args.fading is not None:
            params = params.with_(shadow_sigma_db=args.fading)
        if args.population is not None:
            spec = named_population(
                args.population, args.ues, params, base_seed=args.seed
            )
            source = f"{args.population} mix"
        else:
            spec = FleetSpec(
                n_ues=args.ues,
                n_walks=args.walks,
                base_seed=args.seed,
                params=params,
            )
            source = f"{args.walks} legs/UE"
        trace = record_fleet_trace(spec)
        print(f"trace    : recorded {trace.n_ues} UEs x "
              f"{trace.max_epochs} epochs ({source})")
        if args.save is not None:
            path = trace.save(args.save)
            print(f"saved    : {path}")
    else:
        trace = FleetTrace.load(args.trace)
        print(f"trace    : {args.trace} ({trace.n_ues} UEs x "
              f"{trace.max_epochs} epochs)")

    n_reports = int(sum(trace.lengths))
    t0 = time.perf_counter()
    if args.connect is not None:
        from .sim.distributed import parse_address

        host, port = parse_address(args.connect)
        stats, streamed = asyncio.run(
            replay_to_server(
                trace, host, port, codec=args.codec, rate=args.rate
            )
        )
        where = f"tcp {host}:{port} ({args.codec})"
    elif args.spawn:
        with spawned_server() as (host, port):
            stats, streamed = asyncio.run(
                replay_to_server(
                    trace, host, port, codec=args.codec, rate=args.rate
                )
            )
        where = f"spawned server ({args.codec})"
    else:
        service, streamed = replay_in_process(
            trace, service_for_trace(trace)
        )
        stats = service.stats_payload()
        where = "in-process"
    elapsed = time.perf_counter() - t0

    latency = stats.get("latency", {})
    print(f"replayed : {n_reports} reports in {elapsed:.3f} s "
          f"({n_reports / elapsed:,.0f} reports/s, {where})")
    print(f"epochs   : {stats['epochs_closed']} closed "
          f"({stats['watermark_closes']} watermark, "
          f"{stats['forced_closes']} forced); "
          f"p99 decision latency "
          f"{latency.get('p99_s', float('nan')) * 1e3:.2f} ms")
    summary = (
        streamed if isinstance(streamed, dict) else streamed.as_dict()
    )
    print(f"handovers: {summary['n_handovers']:g} "
          f"(ping-pongs {summary['n_ping_pongs']:g}, "
          f"necessary {summary['n_necessary']:g})")

    if args.verify:
        reference = offline_reference_metrics(trace)
        if isinstance(streamed, dict):
            # JSON-codec TCP replays ship the scalar summary only
            problems = (
                []
                if streamed == reference.as_dict()
                else [
                    f"scalar summary differs: {streamed} != "
                    f"{reference.as_dict()}"
                ]
            )
        else:
            problems = identity_report(streamed, reference)
        if problems:
            print("identity : FAILED")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print("identity : OK (stream == offline batch engine, exact)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for exp in EXPERIMENTS.values():
            print(f"{exp.id:<{width}}  [{exp.kind}]  {exp.description}")
        return 0

    if args.command == "show":
        exp = get_experiment(args.artefact)
        artefact = exp.generate()
        print(f"== {exp.id}: {exp.description} ==\n")
        print(artefact.render() if hasattr(artefact, "render") else artefact)
        return 0

    if args.command == "report":
        print(full_report())
        return 0

    if args.command == "evaluate":
        flc = build_handover_flc()
        explanation = flc.explain(CSSP=args.cssp, SSN=args.ssn, DMB=args.dmb)
        print(explanation.describe())
        verdict = "HANDOVER" if explanation.output > 0.7 else "stay"
        print(f"decision @ threshold 0.7: {verdict}")
        return 0

    if args.command == "simulate":
        params = SimulationParameters()
        scenario = (
            SCENARIO_PINGPONG if args.scenario == "pingpong"
            else SCENARIO_CROSSING
        )
        trace = scenario.generate(params)
        system = FuzzyHandoverSystem(cell_radius_km=params.cell_radius_km)
        result, metrics = run_trace(
            params, system, trace, speed_kmh=args.speed
        )
        print(f"scenario : {scenario.name} (paper iseed="
              f"{scenario.paper_iseed}, frozen seed {scenario.seed})")
        print(f"speed    : {args.speed:g} km/h")
        print(f"sequence : {result.serving_sequence()}")
        print(f"handovers: {metrics.n_handovers} "
              f"(ping-pongs: {metrics.n_ping_pongs})")
        for e in result.events:
            print(f"  step {e.step:3d} @ {e.distance_km:5.2f} km: "
                  f"{e.source} -> {e.target} (output {e.output:.3f})")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "replay":
        return _cmd_replay(parser, args)

    if args.command == "worker":
        from .sim.distributed import FaultSpec, WorkerServer, parse_address

        host, port = parse_address(args.listen)
        fault = (
            FaultSpec(after=args.die_after, mode="exit")
            if args.die_after is not None
            else None
        )
        server = WorkerServer(
            host, port, max_tasks=args.max_tasks, fault=fault
        )
        print(
            f"listening on {server.address[0]}:{server.address[1]}",
            flush=True,
        )
        server.serve_forever()
        return 0

    if args.command == "fleet":
        if args.population is not None and (
            args.walks is not None or args.speeds is not None
        ):
            parser.error(
                "--walks/--speeds configure the homogeneous fleet; a "
                "--population mix defines mobility and speeds per cohort"
            )
        walks = 10 if args.walks is None else args.walks
        if args.population is not None:
            scenario = FleetScenario.from_mix(
                args.population, n_ues=args.ues, base_seed=args.seed
            )
            legs = f"{args.population} mix"
        else:
            scenario = FleetScenario(
                name=f"fleet-{args.ues}",
                n_ues=args.ues,
                n_walks=walks,
                base_seed=args.seed,
                speeds_kmh=(
                    tuple(args.speeds) if args.speeds else PAPER_SPEEDS_KMH
                ),
            )
            legs = f"{walks} legs/UE"
        from .sim import partition_fleet

        tuning_flags = (
            args.heartbeat_interval is not None
            or args.heartbeat_timeout is not None
            or args.max_retries is not None
            or args.no_serial_fallback
        )
        if tuning_flags and args.hosts is None:
            parser.error(
                "--heartbeat-interval/--heartbeat-timeout/--max-retries/"
                "--no-serial-fallback tune the distributed executor and "
                "require --hosts"
            )
        if (
            args.heartbeat_interval is not None
            and args.heartbeat_interval <= 0
        ):
            parser.error(
                f"--heartbeat-interval must be positive, "
                f"got {args.heartbeat_interval}"
            )
        if args.heartbeat_timeout is not None and args.heartbeat_timeout <= 0:
            parser.error(
                f"--heartbeat-timeout must be positive, "
                f"got {args.heartbeat_timeout}"
            )
        if args.max_retries is not None and args.max_retries < 0:
            parser.error(
                f"--max-retries must be >= 0, got {args.max_retries}"
            )
        if args.checkpoint is not None:
            if args.population is not None:
                parser.error(
                    "--checkpoint supports homogeneous fleets only, "
                    "not --population mixes"
                )
            if args.hosts is not None or args.workers is not None:
                parser.error(
                    "--checkpoint runs shards serially in-process "
                    "(checkpointing owns the execution order); drop "
                    "--hosts/--workers"
                )

        hosts = None
        if args.hosts is not None:
            if args.workers is not None:
                parser.error("--hosts and --workers are mutually exclusive")
            from .sim.distributed import parse_hosts

            hosts = [
                f"{h}:{p}" for h, p in parse_hosts(args.hosts)
            ]
        executor = None
        if hosts is not None and tuning_flags:
            from .sim.distributed import DistributedExecutor

            tuning = {}
            if args.heartbeat_interval is not None:
                tuning["heartbeat_interval"] = args.heartbeat_interval
            if args.heartbeat_timeout is not None:
                tuning["heartbeat_timeout"] = args.heartbeat_timeout
            if args.max_retries is not None:
                tuning["max_retries"] = args.max_retries
            if args.no_serial_fallback:
                tuning["serial_fallback"] = False
            executor = DistributedExecutor(hosts, **tuning)
        n_shards = len(partition_fleet(args.ues, args.shards))
        t0 = time.perf_counter()
        if args.checkpoint is not None:
            from .resilience import run_fleet_checkpointed
            from .sim import FleetSpec

            # the homogeneous spec directly (not the population
            # expansion): checkpointed runs snapshot per-stream fading
            # state, which the homogeneous tiled path owns
            spec = FleetSpec(
                n_ues=args.ues,
                n_walks=walks,
                base_seed=args.seed,
                speeds_kmh=(
                    tuple(args.speeds) if args.speeds else PAPER_SPEEDS_KMH
                ),
                params=SimulationParameters(),
            )
            if args.backend is not None:
                spec = spec.with_backend(args.backend)
            if args.flc_backend is not None:
                spec = spec.with_flc_backend(args.flc_backend)
            fleet = run_fleet_checkpointed(
                spec,
                checkpoint_dir=args.checkpoint,
                n_shards=args.shards,
                tile_epochs=args.tile_epochs,
            )
        else:
            fleet = scenario.run_sharded(
                SimulationParameters(),
                n_shards=args.shards,
                max_workers=args.workers,
                backend=args.backend,
                flc_backend=args.flc_backend,
                hosts=None if executor is not None else hosts,
                tile_epochs=args.tile_epochs,
                executor=executor,
            )
        elapsed = time.perf_counter() - t0
        epochs = fleet.n_epochs_total
        # display-only name resolution: never run the "auto" timing
        # probe in the parent (the shards resolve it on their own host)
        requested = resolve_backend(args.backend, probe=False)
        label = (
            "auto (fastest kernel per executing host)"
            if requested == AUTO_BACKEND
            else requested
        )
        flc_label = resolve_flc_backend(args.flc_backend)
        print(f"scenario : {scenario.name} (seeds {args.seed}.."
              f"{args.seed + args.ues - 1}, {legs})")
        print(f"backend  : {label} pathloss kernel, "
              f"{flc_label} FLC kernel")
        print(f"fleet    : {fleet.n_ues} UEs, {epochs} measurement epochs")
        if args.checkpoint is not None:
            where = f"checkpointed in {args.checkpoint}"
        elif hosts is not None:
            where = (
                f"{len(hosts)} socket worker{'s' if len(hosts) != 1 else ''}"
            )
        else:
            where = "local"
        print(f"wall     : {elapsed:.3f} s "
              f"({epochs / elapsed:,.0f} UE-epochs/s, "
              f"{n_shards} shard{'s' if n_shards != 1 else ''}, {where})")
        print(f"handovers: {fleet.n_handovers} "
              f"({fleet.mean_handovers_per_ue:.2f}/UE, "
              f"necessary {fleet.n_necessary})")
        print(f"ping-pong: {fleet.n_ping_pongs} "
              f"(rate {fleet.ping_pong_rate:.3f})")
        print(f"wrong-BS : {fleet.wrong_cell_fraction:.4f} of epochs")
        print(f"outage   : {fleet.outage_fraction:.4f} of epochs "
              f"(below {fleet.outage_dbw:g} dBW)")
        if args.population is not None and fleet.cohort_names is not None:
            print("cohorts  :")
            width = max(len(n) for n in fleet.cohort_names)
            for cm in fleet.per_cohort():
                print(f"  {cm.describe(width)}")
        if args.metrics_out is not None:
            import pickle

            with open(args.metrics_out, "wb") as fh:
                pickle.dump(fleet, fh, protocol=pickle.HIGHEST_PROTOCOL)
            print(f"metrics  : saved to {args.metrics_out}")
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
