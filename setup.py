"""Legacy setup shim.

Kept alongside pyproject.toml because the offline build environment
lacks the `wheel` package, which modern PEP-660 editable installs
require; `pip install -e .` falls back to `setup.py develop` through
this file.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
