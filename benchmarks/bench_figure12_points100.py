"""F12 — regenerate paper Fig. 12 (3-BS powers + measurement points,
ping-pong walk).

Shape assertions: three boundary measurement points exist and at each
one the two strongest of the three plotted BSs are nearly tied — the MS
is "in the boundary of the 3 cells".
"""

from repro.experiments import figure_12


def test_figure12_measurement_points(benchmark):
    fig = benchmark(figure_12)
    assert len(fig.series) == 3
    points = fig.meta["measurement_epochs"]
    assert len(points) == 3
    series = list(fig.series.values())
    for k in points:
        top = sorted(s[k] for s in series)
        assert top[-1] - top[-2] < 2.0  # near-tie at the boundary
    assert fig.render()
