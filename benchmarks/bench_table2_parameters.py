"""T2 — regenerate paper Table 2 (simulation parameters).

Benchmarks parameter-set construction/validation and the rendered
parameter sheet.
"""

from repro.experiments import table_2
from repro.sim import SimulationParameters


def build_and_render() -> str:
    params = SimulationParameters()
    # the factories validate the derived substrate configuration
    params.make_layout()
    params.make_propagation()
    params.make_walk()
    return table_2(params)


def test_table2_parameters(benchmark):
    text = benchmark(build_and_render)
    for needle in ("Gaussian Distribution", "2000 MHz", "40 m", "1.1"):
        assert needle in text
