"""X15 — heterogeneous cohort fleets vs a homogeneous fleet.

The population layer (:mod:`repro.sim.population`) must make mixing
mobility archetypes essentially free: trace generation is grouped per
cohort model, measurement and the FLC stay fully batched across the
whole mixed fleet, and shared-policy cohorts collapse into a single
vectorised pass.  ``test_x15_runtime_ratio`` is the ISSUE-4 acceptance
check: a 3-cohort fleet of N = 2000 UEs (pedestrian random walk /
vehicular Manhattan grid / highway Gauss–Markov, tuned to comparable
path lengths) must run within 1.15x of a homogeneous random-walk fleet
of the same size and leg budget.  The assertion only fires where it is
defined (the full fleet size); the CI smoke at tiny N still verifies
the cohort accounting.

The bench also emits the per-cohort QoS frontier — the fleet analogue
of the X10 session trade-off: signalling load (handovers/UE) vs
ping-pong rate vs outage vs wrong-cell camping, one row per cohort.

Environment knobs: ``X15_FLEET_SIZE`` (default 2000).
"""

import os
import time

import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.mobility import GaussMarkov, ManhattanGrid, RandomWalk
from repro.sim import (
    FleetSpec,
    PopulationSpec,
    SimulationParameters,
    UECohort,
    run_fleet,
)

N = int(os.environ.get("X15_FLEET_SIZE", "2000"))
N_ACCEPT = 2000     # the acceptance-criterion fleet size
RATIO_LIMIT = 1.15  # heterogeneous wall-clock budget vs homogeneous

PARAMS = SimulationParameters(n_walks=8)

HOMOGENEOUS = FleetSpec(n_ues=N, n_walks=8, base_seed=3000, params=PARAMS)

# three archetypes with comparable expected path lengths (~4.8 km), so
# the ratio measures layer overhead, not workload size
THREE_COHORTS = PopulationSpec(
    n_ues=N,
    cohorts=(
        UECohort(
            name="pedestrian",
            model=RandomWalk(n_walks=8, mean_step_km=0.6, step_sigma_km=0.2),
            fraction=0.4,
            speed_range_kmh=(3.0, 6.0),
        ),
        UECohort(
            name="vehicular",
            model=ManhattanGrid(n_legs=8, block_km=0.4, max_blocks=2),
            fraction=0.3,
            speed_range_kmh=(30.0, 60.0),
        ),
        UECohort(
            name="highway",
            model=GaussMarkov(
                n_steps=8, alpha=0.9, mean_speed_km=0.6, sigma_km=0.15
            ),
            fraction=0.3,
            speed_range_kmh=(70.0, 120.0),
        ),
    ),
    params=PARAMS,
    base_seed=3000,
)


def run_homogeneous():
    return run_fleet(HOMOGENEOUS, n_shards=1)


def run_heterogeneous():
    return run_fleet(THREE_COHORTS.to_fleet_spec(), n_shards=1)


@pytest.mark.benchmark(group="x15-heterogeneous-fleet")
def test_x15_homogeneous_fleet(benchmark):
    fleet = run_once(benchmark, run_homogeneous)
    assert fleet.n_ues == N


@pytest.mark.benchmark(group="x15-heterogeneous-fleet")
def test_x15_heterogeneous_fleet(benchmark):
    fleet = run_once(benchmark, run_heterogeneous)
    assert fleet.n_ues == N


def test_x15_runtime_ratio():
    """ISSUE-4 acceptance: a 3-cohort N = 2000 fleet within 1.15x of a
    homogeneous fleet of the same size, with per-cohort metrics
    reported (asserted at the full fleet size)."""
    # one warm-up pass each (imports, allocator, kernel caches) — traced
    # so the artifact gets per-path peaks — then interleaved best-of
    # timings so clock drift hits both paths alike
    hom, _, mem_hom = run_measured(run_homogeneous)
    het, _, mem_het = run_measured(run_heterogeneous)
    repeats = 2 if N >= N_ACCEPT else 1
    t_hom = t_het = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_homogeneous()
        t_hom = min(t_hom, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_heterogeneous()
        t_het = min(t_het, time.perf_counter() - t0)

    # cohort accounting holds at every fleet size
    assert hom.n_ues == het.n_ues == N
    assert het.cohort_names == ("highway", "pedestrian", "vehicular")
    per = het.per_cohort()
    assert sum(c.n_ues for c in per) == N
    assert sum(c.n_handovers for c in per) == het.n_handovers

    ratio = t_het / t_hom
    print(
        f"\nx15: homogeneous {t_hom:.2f} s, 3-cohort mix {t_het:.2f} s "
        f"-> {ratio:.3f}x over {N} UEs"
    )
    # the per-cohort QoS frontier (fleet analogue of X10): signalling
    # load vs ping-pong vs outage vs wrong-cell camping, per archetype
    print("x15 per-cohort QoS frontier:")
    width = max(len(c.name) for c in per)
    for c in per:
        print(f"  {c.describe(width)}")
    write_bench_artifact(
        "x15",
        n=N,
        timings_s={"homogeneous": t_hom, "heterogeneous": t_het},
        speedups={"heterogeneous_vs_homogeneous_ratio": ratio},
        memory={
            "tracemalloc_peak_homogeneous": mem_hom,
            "tracemalloc_peak_heterogeneous": mem_het,
        },
        cohorts=list(het.cohort_names),
    )
    if N < N_ACCEPT:
        pytest.skip(
            f"ratio asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    assert ratio <= RATIO_LIMIT, (
        f"3-cohort fleet is {ratio:.3f}x the homogeneous runtime "
        f"(budget {RATIO_LIMIT}x at N={N})"
    )
