"""Shared benchmark fixtures and the perf-artifact emitter.

Heavy artefacts (full speed-sweep tables, fading comparisons) run as
single-round ``benchmark.pedantic`` measurements — they are experiment
regenerations first and timing measurements second.  Micro-benchmarks
(FLC evaluation paths) use the normal calibrated rounds.

Every acceptance bench (``bench_x12`` onwards) also persists its
headline numbers as a machine-readable ``BENCH_x*.json`` through
:func:`write_bench_artifact`, so the perf trajectory of the repo is a
directory of schema-stable JSON files (CI uploads them per run) instead
of scrollback.
"""

import json
import os
from pathlib import Path

import pytest

from repro.sim import SimulationParameters

#: Bump when the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Environment override for where ``BENCH_x*.json`` files land
#: (default: ``benchmarks/artifacts/`` next to this file).
BENCH_DIR_ENV_VAR = "REPRO_BENCH_DIR"


@pytest.fixture(scope="session")
def paper_params() -> SimulationParameters:
    return SimulationParameters()


def run_once(benchmark, fn, *args, **kwargs):
    """One-shot pedantic run for experiment-sized workloads."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def write_bench_artifact(
    bench: str,
    *,
    n: int | None = None,
    backend: str | None = None,
    timings_s: dict | None = None,
    speedups: dict | None = None,
    **extra,
) -> Path:
    """Persist one bench's headline numbers as ``BENCH_<bench>.json``.

    The common schema every ``bench_x*`` emits:

    * ``schema`` — :data:`BENCH_SCHEMA_VERSION`;
    * ``bench`` — the bench id (``"x16"``);
    * ``n`` — the workload size the numbers were measured at;
    * ``backend`` — the backend under test, when the bench pits one;
    * ``timings_s`` — ``{label: seconds}`` wall-clock map;
    * ``speedups`` — ``{label: ratio}`` headline ratios;
    * any extra keyword fields, verbatim (counts, knobs, notes).

    Files land in ``$REPRO_BENCH_DIR`` (default
    ``benchmarks/artifacts/``); the directory is created on demand and
    each bench overwrites its own file, so the directory always holds
    the latest run per bench.  Returns the written path.
    """
    out_dir = Path(
        os.environ.get(BENCH_DIR_ENV_VAR)
        or Path(__file__).parent / "artifacts"
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "n": n,
        "backend": backend,
        "timings_s": {k: float(v) for k, v in (timings_s or {}).items()},
        "speedups": {k: float(v) for k, v in (speedups or {}).items()},
    }
    payload.update(extra)
    path = out_dir / f"BENCH_{bench}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
