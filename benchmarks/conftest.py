"""Shared benchmark fixtures.

Heavy artefacts (full speed-sweep tables, fading comparisons) run as
single-round ``benchmark.pedantic`` measurements — they are experiment
regenerations first and timing measurements second.  Micro-benchmarks
(FLC evaluation paths) use the normal calibrated rounds.
"""

import pytest

from repro.sim import SimulationParameters


@pytest.fixture(scope="session")
def paper_params() -> SimulationParameters:
    return SimulationParameters()


def run_once(benchmark, fn, *args, **kwargs):
    """One-shot pedantic run for experiment-sized workloads."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
