"""Shared benchmark fixtures and the perf-artifact emitter.

Heavy artefacts (full speed-sweep tables, fading comparisons) run as
single-round ``benchmark.pedantic`` measurements — they are experiment
regenerations first and timing measurements second.  Micro-benchmarks
(FLC evaluation paths) use the normal calibrated rounds.

Every acceptance bench (``bench_x12`` onwards) also persists its
headline numbers as a machine-readable ``BENCH_x*.json`` through
:func:`write_bench_artifact`, so the perf trajectory of the repo is a
directory of schema-stable JSON files (CI uploads them per run) instead
of scrollback.
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.sim import SimulationParameters

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

#: Bump when the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Environment override for where ``BENCH_x*.json`` files land
#: (default: ``benchmarks/artifacts/`` next to this file).
BENCH_DIR_ENV_VAR = "REPRO_BENCH_DIR"


@pytest.fixture(scope="session")
def paper_params() -> SimulationParameters:
    return SimulationParameters()


def run_once(benchmark, fn, *args, **kwargs):
    """One-shot pedantic run for experiment-sized workloads."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def _max_rss_kb() -> int | None:
    """Process max-RSS in KiB so far (``None`` where unavailable).

    High-water mark of the whole process — it only ever grows, so the
    *difference* across a workload is a lower bound on that workload's
    footprint, and the absolute value is the honest "what did this CI
    job peak at" number the artifacts record.
    """
    if resource is None:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_measured(fn, *args, **kwargs):
    """Run ``fn`` under tracemalloc; return ``(result, s, peak_bytes)``.

    ``peak_bytes`` is the tracemalloc high-water mark of Python-level
    allocations *during the call* (numpy array buffers included), which
    — unlike max-RSS — resets per call and is therefore comparable
    between two pipeline variants run in the same process.  Tracing
    slows allocation-heavy code somewhat, so timing-headline numbers
    should come from an untraced run and memory numbers from this one.
    """
    tracing_already = tracemalloc.is_tracing()
    if not tracing_already:
        tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not tracing_already:
            tracemalloc.stop()
    return result, elapsed, int(peak)


def write_bench_artifact(
    bench: str,
    *,
    n: int | None = None,
    backend: str | None = None,
    timings_s: dict | None = None,
    speedups: dict | None = None,
    memory: dict | None = None,
    **extra,
) -> Path:
    """Persist one bench's headline numbers as ``BENCH_<bench>.json``.

    The common schema every ``bench_x*`` emits:

    * ``schema`` — :data:`BENCH_SCHEMA_VERSION`;
    * ``bench`` — the bench id (``"x16"``);
    * ``n`` — the workload size the numbers were measured at;
    * ``backend`` — the backend under test, when the bench pits one;
    * ``timings_s`` — ``{label: seconds}`` wall-clock map;
    * ``speedups`` — ``{label: ratio}`` headline ratios;
    * ``memory`` — peak-memory numbers: the emitter always records the
      process ``max_rss_kb`` at write time; pass per-phase tracemalloc
      peaks (e.g. from :func:`run_measured`) to extend the map;
    * any extra keyword fields, verbatim (counts, knobs, notes).

    Files land in ``$REPRO_BENCH_DIR`` (default
    ``benchmarks/artifacts/``); the directory is created on demand and
    each bench overwrites its own file, so the directory always holds
    the latest run per bench.  Returns the written path.
    """
    path = bench_artifact_path(bench)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "n": n,
        "backend": backend,
        "timings_s": {k: float(v) for k, v in (timings_s or {}).items()},
        "speedups": {k: float(v) for k, v in (speedups or {}).items()},
        "memory": {"max_rss_kb": _max_rss_kb(), **(memory or {})},
    }
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def bench_artifact_path(bench: str) -> Path:
    """Where ``write_bench_artifact(bench, ...)`` lands its JSON file
    (the file may not exist yet)."""
    out_dir = Path(
        os.environ.get(BENCH_DIR_ENV_VAR)
        or Path(__file__).parent / "artifacts"
    )
    return out_dir / f"BENCH_{bench}.json"
