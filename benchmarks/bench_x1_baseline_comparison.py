"""X1 — fuzzy vs non-fuzzy baselines (the paper's stated future work).

Shared fading workload (shadow fading is the paper's stated cause of
ping-pong), identical walks for every policy.  Headline assertion:
the fuzzy system produces fewer ping-pongs than the conventional
constant-margin hysteresis scheme, and stays on the favourable side of
the ping-pong/connectivity frontier against the filtered variant too.
"""

from conftest import run_once

from repro.sim import SimulationParameters, run_grid, summarize_outcomes

PARAMS = SimulationParameters(
    n_walks=10,
    measurement_spacing_km=0.1,
    shadow_sigma_db=4.0,
    shadow_decorrelation_km=0.1,
)
SEEDS = list(range(10))


def compare() -> dict[str, dict[str, float]]:
    out = {}
    for label, spec in {
        "fuzzy": ("fuzzy", {"smoothing_alpha": 0.3}),
        "hysteresis-raw": ("hysteresis", {"margin_db": 4.0}),
        "hysteresis-filtered": ("hysteresis", {"margin_db": 2.0,
                                               "smoothing_alpha": 0.3}),
        "strongest": ("strongest", {}),
    }.items():
        out[label] = summarize_outcomes(run_grid(PARAMS, spec, SEEDS))
    return out


def test_x1_baseline_comparison(benchmark):
    results = run_once(benchmark, compare)
    fuzzy = results["fuzzy"]
    raw = results["hysteresis-raw"]
    filt = results["hysteresis-filtered"]
    worst = results["strongest"]

    # who wins: the fuzzy system avoids the ping-pong the conventional
    # raw-margin scheme suffers (by a wide factor)
    assert fuzzy["ping_pongs_per_run"] < 0.5 * raw["ping_pongs_per_run"]
    assert fuzzy["ping_pong_rate"] < raw["ping_pong_rate"]
    # worst-case anchor: always-strongest ping-pongs the most
    assert worst["ping_pongs_per_run"] > raw["ping_pongs_per_run"]
    # at a comparable wrong-cell fraction, fuzzy matches or beats the
    # filtered hysteresis on ping-pong rate
    assert fuzzy["wrong_cell_fraction"] < filt["wrong_cell_fraction"] + 0.1
    assert fuzzy["ping_pong_rate"] <= filt["ping_pong_rate"] + 0.05
    # and it still hands over when needed
    assert fuzzy["handovers_per_run"] >= 1.0
