"""F10 — regenerate paper Fig. 10 (received power from BS(-1,2)).

Shape assertions: the first neighbour's power rises as the MS
approaches it (paper: "when the MS is approaching neighbor BS the
received power from these BSs is increased").
"""

from repro.experiments import figure_10


def test_figure10_neighbor_power(benchmark):
    fig = benchmark(figure_10)
    power = fig.series["Electric Field Intensity BS(-1, 2)"]
    n = len(power)
    # approaching the neighbour lifts its power well above the start
    start = power[: n // 8].mean()
    assert power.max() > start + 4.0
    # and the middle of the walk (inside/near (-1,2)) beats the start
    assert power[n // 3: 2 * n // 3].mean() > start
    assert fig.render()
