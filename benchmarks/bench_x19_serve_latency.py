"""X19 — streaming decision-service throughput and latency SLOs.

Records a fleet trace, replays it through the in-process
:class:`~repro.serve.service.DecisionService` (the same code path the
TCP front-end drives, minus socket I/O), and pins:

* **identity** — the streamed metrics equal the offline
  ``BatchSimulator`` metrics byte-for-byte (re-asserted here at bench
  size, not just in the test-suite sizes);
* **sustained ingest** — reports/second through submit → watermark
  close → batched FLC sweep, at least ``REPORTS_PER_S_FLOOR``;
* **p99 per-epoch decision latency** — the time from closing an epoch
  to the commands being fanned out, at most ``P99_LATENCY_S`` (one
  epoch sweeps the whole fleet, so this is the service's
  command-freshness SLO).

Headline numbers land in ``BENCH_x19.json`` (same schema as X12–X18:
``schema``/``n``/``timings_s``/``speedups``/``memory`` with
``max_rss_kb`` and tracemalloc peaks) **before** any assert.

Environment knobs: ``X19_FLEET_SIZE`` (default 300), ``X19_WALKS``
(default 4).  CI smoke runs N = 48; the SLO pins assert only at the
full N = 300.
"""

import os

import pytest
from conftest import run_measured, write_bench_artifact

from repro.sim import (
    FleetSpec,
    SimulationParameters,
    offline_reference_metrics,
    record_fleet_trace,
)
from repro.serve import identity_report, replay_in_process, service_for_trace

N = int(os.environ.get("X19_FLEET_SIZE", "300"))
WALKS = int(os.environ.get("X19_WALKS", "4"))
N_ACCEPT = 300              # the acceptance-criterion fleet size
REPORTS_PER_S_FLOOR = 2000  # sustained ingest, reports/second
P99_LATENCY_S = 0.25        # p99 per-epoch decision sweep, seconds

PARAMS = SimulationParameters(shadow_sigma_db=6.0, n_walks=WALKS)
SPEC = FleetSpec(n_ues=N, n_walks=WALKS, base_seed=4000, params=PARAMS)


@pytest.mark.serve
def test_x19_serve_throughput_and_latency():
    trace = record_fleet_trace(SPEC)
    n_reports = int(sum(trace.lengths))

    # untraced timing run (headline numbers)...
    service = service_for_trace(trace)
    import time

    t0 = time.perf_counter()
    replay_in_process(trace, service)
    elapsed = time.perf_counter() - t0
    streamed = service.metrics()
    latency = service.latency_summary()
    reports_per_s = n_reports / elapsed

    # ...and a traced re-run for the memory numbers
    _, _t_traced, mem_peak = run_measured(
        lambda: replay_in_process(trace, service_for_trace(trace))
    )

    reference = offline_reference_metrics(trace)
    problems = identity_report(streamed, reference)

    print(
        f"\nx19: {n_reports} reports over {trace.n_ues} UEs x "
        f"{trace.max_epochs} epochs in {elapsed:.3f} s -> "
        f"{reports_per_s:,.0f} reports/s; decision latency "
        f"p50 {latency['p50_s'] * 1e3:.2f} ms / "
        f"p99 {latency['p99_s'] * 1e3:.2f} ms / "
        f"max {latency['max_s'] * 1e3:.2f} ms; "
        f"peak {mem_peak / 2**20:.0f} MiB; "
        f"identity {'OK' if not problems else 'FAILED'}"
    )
    # persist the record before any assert: the perf trajectory matters
    # most on exactly the runs where a pin fails
    write_bench_artifact(
        "x19",
        n=N,
        timings_s={
            "replay_total": elapsed,
            "decision_p50": latency["p50_s"],
            "decision_p99": latency["p99_s"],
            "decision_max": latency["max_s"],
        },
        speedups={"reports_per_s": reports_per_s},
        memory={"tracemalloc_peak_replay": mem_peak},
        walks=WALKS,
        n_reports=n_reports,
        epochs_closed=int(service.stats.epochs_closed),
        commands_emitted=int(service.stats.commands_emitted),
        identity_ok=not problems,
    )

    assert not problems, "\n".join(problems)
    if N < N_ACCEPT:
        pytest.skip(f"SLOs asserted at N={N_ACCEPT}, ran N={N} (smoke mode)")
    assert reports_per_s >= REPORTS_PER_S_FLOOR, (
        f"sustained ingest {reports_per_s:,.0f} reports/s below the "
        f"{REPORTS_PER_S_FLOOR} floor at N={N}"
    )
    assert latency["p99_s"] <= P99_LATENCY_S, (
        f"p99 decision latency {latency['p99_s'] * 1e3:.1f} ms over the "
        f"{P99_LATENCY_S * 1e3:.0f} ms SLO at N={N}"
    )
