"""X8 — Mamdani vs zero-order Sugeno (TSK) inference.

Converts the paper's rule base to a TSK controller (consequent sets →
centroids) and compares decision surfaces, scenario outcomes and
throughput.  Findings (asserted):

* the knowledge lives in the *rule base* — the engines agree within a
  few hundredths of mean drift, and TSK evaluates ~20× faster (no
  output-universe sampling);
* but the decision threshold is **engine-specific**: the TSK surface
  runs ~0.02 hotter at the boundary graze, so at the Mamdani-calibrated
  0.7 it fires once on the ping-pong walk; re-calibrating to 0.72
  restores both scenario outcomes exactly.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core import FuzzyHandoverSystem, build_handover_flc, build_handover_rule_base
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.fuzzy import sugeno_from_mamdani
from repro.sim import SimulationParameters, run_trace

RNG = np.random.default_rng(21)
GRID = {
    "CSSP": RNG.uniform(-10, 10, 2000),
    "SSN": RNG.uniform(-120, -80, 2000),
    "DMB": RNG.uniform(0, 1.5, 2000),
}

MAMDANI = build_handover_flc()
SUGENO = sugeno_from_mamdani(build_handover_rule_base())


def scenario_outcomes():
    params = SimulationParameters()
    out = {}
    # SugenoController speaks the pipeline's evaluate/evaluate_batch
    # contract directly (and the compiled-backend registry with it)
    for label, flc, threshold in (
        ("mamdani", None, 0.70),
        ("sugeno@0.70", SUGENO, 0.70),
        ("sugeno@0.72", SUGENO, 0.72),
    ):
        ping = run_trace(
            params,
            FuzzyHandoverSystem(
                flc=flc, cell_radius_km=1.0, threshold=threshold
            ),
            SCENARIO_PINGPONG.generate(params),
        )[1]
        cross = run_trace(
            params,
            FuzzyHandoverSystem(
                flc=flc, cell_radius_km=1.0, threshold=threshold
            ),
            SCENARIO_CROSSING.generate(params),
        )[1]
        out[label] = (ping.n_handovers, cross.n_handovers, cross.n_ping_pongs)
    return out


@pytest.mark.benchmark(group="x8-engines")
def test_x8_mamdani_batch(benchmark):
    out = benchmark(lambda: MAMDANI.evaluate_batch(GRID))
    assert out.shape == (2000,)


@pytest.mark.benchmark(group="x8-engines")
def test_x8_sugeno_batch(benchmark):
    out = benchmark(lambda: SUGENO.evaluate_batch(GRID))
    assert out.shape == (2000,)
    # surfaces agree closely across the whole input space
    drift = np.abs(out - MAMDANI.evaluate_batch(GRID))
    assert float(drift.mean()) < 0.05
    assert float(drift.max()) < 0.15


def test_x8_scenario_equivalence(benchmark):
    results = run_once(benchmark, scenario_outcomes)
    assert results["mamdani"] == (0, 3, 0)
    # at the Mamdani-calibrated threshold the hotter TSK surface fires
    # once on the boundary graze...
    assert results["sugeno@0.70"][0] >= 1
    assert results["sugeno@0.70"][1:] == (3, 0)
    # ...and a +0.02 re-calibration restores the paper's outcomes
    assert results["sugeno@0.72"] == (0, 3, 0)
