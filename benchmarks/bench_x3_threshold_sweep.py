"""X3 — decision-threshold sweep: where does the paper's 0.7 sit?

Sweeps the handover threshold over 0.50–0.90 on both frozen scenarios.
The paper's 0.7 must fall inside the operating window that both avoids
the ping-pong walk's false handovers *and* executes all three crossing
handovers — the bench asserts that window exists and contains 0.7.
"""

from conftest import run_once

from repro.core import FuzzyHandoverSystem
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.sim import SimulationParameters, run_trace

THRESHOLDS = (0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90)


def sweep() -> dict[float, tuple[int, int, int]]:
    params = SimulationParameters()
    t_ping = SCENARIO_PINGPONG.generate(params)
    t_cross = SCENARIO_CROSSING.generate(params)
    out = {}
    for th in THRESHOLDS:
        _, m_ping = run_trace(
            params,
            FuzzyHandoverSystem(threshold=th, cell_radius_km=1.0),
            t_ping,
        )
        _, m_cross = run_trace(
            params,
            FuzzyHandoverSystem(threshold=th, cell_radius_km=1.0),
            t_cross,
        )
        out[th] = (
            m_ping.n_handovers,
            m_cross.n_handovers,
            m_cross.n_ping_pongs,
        )
    return out


def test_x3_threshold_sweep(benchmark):
    results = run_once(benchmark, sweep)
    # the paper's operating point works on both scenarios
    ping_at_07, cross_at_07, pp_at_07 = results[0.70]
    assert ping_at_07 == 0
    assert cross_at_07 == 3
    assert pp_at_07 == 0
    # too-low thresholds fire on the ping-pong walk
    assert results[0.50][0] > 0
    # too-high thresholds starve the crossing walk
    assert results[0.90][1] < 3
    # monotonicity: crossing handovers never increase with the threshold
    cross_counts = [results[th][1] for th in THRESHOLDS]
    assert all(a >= b for a, b in zip(cross_counts, cross_counts[1:]))
