"""X6 — serial vs process-parallel sweep execution.

Same (seed × speed) grid through ``run_grid`` and
``run_grid_parallel``; results must agree exactly, and the parallel
path's wall time is reported for comparison.  (Speed-up depends on core
count and task size; the assertion is correctness, the measurement is
the point.)
"""

import pytest
from conftest import run_once

from repro.sim import (
    SimulationParameters,
    run_grid,
    run_grid_parallel,
)

PARAMS = SimulationParameters(measurement_spacing_km=0.1, n_walks=8)
SEEDS = list(range(6))
SPEEDS = [0.0, 30.0]
SPEC = ("fuzzy", {"smoothing_alpha": 0.5})


@pytest.mark.benchmark(group="x6-sweep")
def test_x6_serial_sweep(benchmark):
    outs = run_once(benchmark, run_grid, PARAMS, SPEC, SEEDS, SPEEDS)
    assert len(outs) == len(SEEDS) * len(SPEEDS)


@pytest.mark.benchmark(group="x6-sweep")
def test_x6_parallel_sweep(benchmark):
    outs = run_once(
        benchmark, run_grid_parallel, PARAMS, SPEC, SEEDS, SPEEDS
    )
    assert len(outs) == len(SEEDS) * len(SPEEDS)
    # correctness: identical outcomes to the serial path
    serial = run_grid(PARAMS, SPEC, SEEDS, SPEEDS)
    for s, p in zip(serial, outs):
        assert s.walk_seed == p.walk_seed
        assert s.serving_sequence == p.serving_sequence
        assert s.metrics.n_handovers == p.metrics.n_handovers
