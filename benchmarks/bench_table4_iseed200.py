"""T4 — regenerate paper Table 4 (crossing walk, speed sweep).

Runs the full pipeline over the frozen crossing walk and asserts the
paper's headline at the primary operating point: exactly **three**
handovers (one per genuine boundary crossing), zero ping-pong, with the
decision samples exceeding the 0.7 threshold.  The high-speed tail is
the documented deviation D2 (EXPERIMENTS.md) — asserted as "at least the
first handover, never a wrong one".
"""

from conftest import run_once

from repro.core import HANDOVER_THRESHOLD
from repro.experiments import table_4


def test_table4_crossing_walk(benchmark):
    table = run_once(benchmark, table_4)
    by_speed = table.handovers_by_speed()
    assert by_speed[0.0] == 3
    assert by_speed[10.0] == 3
    assert all(n >= 1 for n in by_speed.values())
    assert all(r.n_ping_pongs == 0 for r in table.rows)
    # paper shape: per point, the second (decision) sample crosses 0.7
    v0 = table.rows[0]
    for point in v0.points:
        assert point[-1].output > HANDOVER_THRESHOLD
        assert point[0].output <= HANDOVER_THRESHOLD
