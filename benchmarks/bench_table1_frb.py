"""T1 — regenerate paper Table 1 (the 64-rule FRB).

Benchmarks rule-base construction plus the full completeness/conflict
audit and the two-column rendering, and asserts the table is verbatim
complete.
"""

from repro.core import PAPER_FRB, build_handover_rule_base
from repro.experiments import table_1


def build_and_audit() -> str:
    rb = build_handover_rule_base()
    assert len(rb) == 64
    assert rb.is_complete()
    assert rb.missing_combinations() == []
    return table_1()


def test_table1_frb(benchmark):
    text = benchmark(build_and_audit)
    # verbatim checks of the printed artefact
    assert "SM   WK   NR   LO" in text      # rule 1
    assert "BG   ST   FA   LO" in text      # rule 64
    assert len(PAPER_FRB) == 64
