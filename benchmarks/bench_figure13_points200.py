"""F13 — regenerate paper Fig. 13 (3-BS powers + measurement points,
crossing walk).

Shape assertions: three measurement points, serving/neighbour power
crossovers land where the paper's boundary crossings are.
"""

from repro.experiments import figure_13


def test_figure13_measurement_points(benchmark):
    fig = benchmark(figure_13)
    assert len(fig.series) == 3
    points = fig.meta["measurement_epochs"]
    assert len(points) == 3
    crossings = fig.meta["power_crossovers_km"]["(-1, 2)"]
    measured = fig.meta["measurement_distances_km"]
    assert crossings and abs(crossings[0] - measured[0]) < 0.3
    assert fig.render()
