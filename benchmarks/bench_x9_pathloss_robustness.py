"""X9 — propagation-model robustness.

Re-runs both frozen scenarios with the empirical path-loss alternatives
(Friis free-space, log-distance n=3.2) in place of the paper's dipole
model.  Findings (asserted):

* the pipeline **never ping-pongs** under any propagation law;
* handover eagerness tracks the path-loss exponent — the gentle
  free-space decay keeps neighbours strong and the controller eager,
  the steep n=3.2 urban decay makes it conservative;
* every executed handover targets a cell the MS genuinely occupies —
  no false handovers under any model.

(COST-231/Hata's absolute level sits ~35 dB below the paper's model, so
using it requires re-anchoring the SSN universe — demonstrated in the
unit tests, excluded from this shape bench.)
"""

from conftest import run_once

from repro.core import FuzzyHandoverSystem
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.radio import FreeSpaceModel, LogDistanceModel
from repro.sim import (
    MeasurementSampler,
    SimulationParameters,
    Simulator,
    compute_metrics,
)

MODELS = {
    "paper-dipole": (None, -85.0),
    "free-space": (FreeSpaceModel(), -80.0),
    "log-distance-3.2": (LogDistanceModel(exponent=3.2), -90.0),
}


def sweep():
    params = SimulationParameters()
    layout = params.make_layout()
    out = {}
    for name, (model, gate) in MODELS.items():
        prop = model if model is not None else params.make_propagation()
        row = {}
        for scen, label in (
            (SCENARIO_PINGPONG, "ping"),
            (SCENARIO_CROSSING, "cross"),
        ):
            trace = scen.generate(params)
            series = MeasurementSampler(layout, prop, spacing_km=0.05).measure(
                trace
            )
            policy = FuzzyHandoverSystem(
                cell_radius_km=1.0, potlc_gate_dbw=gate
            )
            result = Simulator(policy).run(series)
            metrics = compute_metrics(result)
            # validate every handover target against the true path
            true_cells = set(
                map(tuple, layout.cell_sequence(
                    trace.densify(0.05).positions
                ))
            )
            targets_ok = all(
                tuple(e.target) in true_cells for e in result.events
            )
            row[label] = {
                "handovers": metrics.n_handovers,
                "ping_pongs": metrics.n_ping_pongs,
                "targets_ok": targets_ok,
            }
        out[name] = row
    return out


def test_x9_pathloss_robustness(benchmark):
    results = run_once(benchmark, sweep)
    # no ping-pong and no false target under any propagation law
    for name, row in results.items():
        for label in ("ping", "cross"):
            assert row[label]["ping_pongs"] == 0, (name, label)
            assert row[label]["targets_ok"], (name, label)
    # the paper model reproduces the paper
    assert results["paper-dipole"]["ping"]["handovers"] == 0
    assert results["paper-dipole"]["cross"]["handovers"] == 3
    # eagerness tracks the exponent: gentle decay >= paper >= steep decay
    assert (
        results["free-space"]["cross"]["handovers"]
        >= results["paper-dipole"]["cross"]["handovers"]
        >= results["log-distance-3.2"]["cross"]["handovers"]
    )
    assert results["log-distance-3.2"]["ping"]["handovers"] == 0
