"""X14 — pluggable pathloss kernel backends vs the seed reference chain.

One fleet-sized site-matrix workload — N = 2000 UEs × ``X14_EPOCHS``
epochs against the 7 sites of a rings-1 hexagonal layout — through
every registered :mod:`repro.radio.backends` kernel.

``test_x14_speedup_optimized_numpy`` is the ISSUE-3 acceptance check:
the optimized NumPy kernel (fused dB conversion, preallocated scratch,
in-place ufuncs) must be at least 1.5x faster than the extracted
reference kernel at the N = 2000 × 7-site workload, while producing
bit-identical output.  Optional accelerator backends (numba, jax) are
*reported* when registered but never gated — their availability depends
on the host, and their conformance is pinned separately by the tier-1
matrix in ``tests/radio/test_backends.py``.

Environment knobs: ``X14_FLEET_SIZE`` (default 2000), ``X14_EPOCHS``
(default 64, the per-UE measurement epochs), ``X14_REPEATS``
(default 5, best-of timing).
"""

import os
import time

import numpy as np
import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.radio import available_backends, get_backend
from repro.sim import SimulationParameters

N = int(os.environ.get("X14_FLEET_SIZE", "2000"))
EPOCHS = int(os.environ.get("X14_EPOCHS", "64"))
REPEATS = int(os.environ.get("X14_REPEATS", "5"))
N_ACCEPT = 2000     # the acceptance-criterion fleet size

PARAMS = SimulationParameters(rings=1)  # 7 sites: centre + first ring
MODEL = PARAMS.make_propagation()
SITES = PARAMS.make_layout().bs_positions
KPARAMS = MODEL.kernel_params()

rng = np.random.default_rng(42)
POINTS = rng.uniform(-3.0, 3.0, size=(N * EPOCHS, 2))


def time_kernel(name):
    """Best-of-``REPEATS`` wall time of one kernel over the workload."""
    kernel = get_backend(name)
    # warm up on the *timed* shape: jax compiles per input shape, so a
    # smaller warm-up array would leave compilation inside the timing
    kernel(SITES, POINTS, KPARAMS)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        kernel(SITES, POINTS, KPARAMS)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.backend
@pytest.mark.benchmark(group="x14-pathloss-backends")
@pytest.mark.parametrize("name", sorted(available_backends()))
def test_x14_backend_timing(benchmark, name):
    kernel = get_backend(name)
    kernel(SITES, POINTS, KPARAMS)  # warm-up / JIT compile, timed shape
    out = run_once(benchmark, kernel, SITES, POINTS, KPARAMS)
    assert out.shape == (POINTS.shape[0], SITES.shape[0])


@pytest.mark.backend
def test_x14_speedup_optimized_numpy():
    """ISSUE-3 acceptance: the optimized NumPy kernel >= 1.5x over the
    reference at N = 2000 UEs x 7 sites, bit-identical output."""
    expected = get_backend("reference")(SITES, POINTS, KPARAMS)
    got = get_backend("numpy")(SITES, POINTS, KPARAMS)
    np.testing.assert_array_equal(got, expected)

    t_ref = time_kernel("reference")
    t_opt = time_kernel("numpy")
    speedup = t_ref / t_opt
    lines = [
        f"\nx14: {N} UEs x {EPOCHS} epochs x {SITES.shape[0]} sites "
        f"({POINTS.shape[0] * SITES.shape[0]:,} point-site pairs)",
        f"  reference {t_ref * 1e3:8.2f} ms",
        f"  numpy     {t_opt * 1e3:8.2f} ms  ({speedup:.2f}x)",
    ]
    # report (never gate) whatever accelerator backends this host has
    timings = {"reference": t_ref, "numpy": t_opt}
    for name in sorted(set(available_backends()) - {"reference", "numpy"}):
        t = time_kernel(name)
        timings[name] = t
        lines.append(f"  {name:<9} {t * 1e3:8.2f} ms  ({t_ref / t:.2f}x)")
    print("\n".join(lines))
    _, _, mem_ref = run_measured(
        get_backend("reference"), SITES, POINTS, KPARAMS
    )
    _, _, mem_opt = run_measured(get_backend("numpy"), SITES, POINTS, KPARAMS)
    write_bench_artifact(
        "x14",
        n=N,
        backend="numpy",
        timings_s=timings,
        speedups={"numpy_vs_reference": speedup},
        memory={
            "tracemalloc_peak_reference": mem_ref,
            "tracemalloc_peak_numpy": mem_opt,
        },
        epochs=EPOCHS,
        n_sites=int(SITES.shape[0]),
    )

    if N < N_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    assert speedup >= 1.5, (
        f"optimized NumPy kernel only {speedup:.2f}x over the reference "
        f"(target 1.5x at N={N} x {SITES.shape[0]} sites)"
    )
