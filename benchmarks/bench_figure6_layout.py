"""F6 — regenerate paper Fig. 6 (hexagonal cell layout)."""

from repro.experiments import figure_6


def test_figure6_layout(benchmark):
    fig = benchmark(figure_6)
    assert len(fig.meta["cells"]) == 19
    assert (0, 0) in fig.meta["cells"]
    # the six paper neighbours of the centre cell are all present
    for cell in [(2, -1), (1, 1), (-1, 2), (-2, 1), (-1, -1), (1, -2)]:
        assert cell in fig.meta["cells"]
    assert fig.render()
