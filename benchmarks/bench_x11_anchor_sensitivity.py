"""X11 — membership-anchor sensitivity (validates DESIGN substitution #3).

Fig. 5 of the paper is a low-resolution plot; our anchor placement is a
*reading*, not a transcription.  This bench perturbs the SSN and DMB
anchors by ±1 dB / ±0.05 and re-runs both frozen scenarios.

Findings (asserted):

* the **crossing** outcome (3 handovers, 0 ping-pong) is robust across
  the entire perturbation box — the genuine handovers do not depend on
  the exact Fig.-5 reading;
* the **ping-pong** outcome is robust to +1 dB SSN and ±0.05 DMB, but
  flips when the interior SSN anchors move −1 dB: the boundary graze
  sits about one dB from the decision surface.  That razor-thin margin
  is in the *paper itself* — its own printed graze output is 0.693
  against the 0.7 threshold — so the sensitivity is a property of the
  published design, faithfully reproduced, not of our reading.
"""

from conftest import run_once

from repro.core.flc import (
    DMB_TERMS,
    SSN_ANCHORS,
    SSN_TERMS,
    build_cssp_variable,
    build_hd_variable,
)
from repro.core.frb import frb_as_rules
from repro.core.system import FuzzyHandoverSystem
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.fuzzy import FuzzyController, RuleBase, ruspini_partition
from repro.sim import SimulationParameters, run_trace

#: anchor perturbations: (SSN shift of the two interior anchors in dB,
#: DMB shift of all anchors)
PERTURBATIONS = [
    (0.0, 0.0),     # the frozen reading
    (+1.0, 0.0),
    (-1.0, 0.0),
    (0.0, +0.05),
    (0.0, -0.05),
    (+1.0, +0.05),
    (-1.0, -0.05),
]


def perturbed_flc(ssn_shift: float, dmb_shift: float) -> FuzzyController:
    ssn_anchors = (
        SSN_ANCHORS[0],
        SSN_ANCHORS[1] + ssn_shift,
        SSN_ANCHORS[2] + ssn_shift,
        SSN_ANCHORS[3],
    )
    dmb_anchors = tuple(a + dmb_shift for a in (0.25, 0.5, 0.75, 1.0))
    ssn = ruspini_partition("SSN", ssn_anchors, SSN_TERMS, unit="dB")
    dmb = ruspini_partition(
        "DMB", dmb_anchors, DMB_TERMS, unit="d/R", universe=(0.0, 1.5)
    )
    rb = RuleBase(
        [build_cssp_variable(), ssn, dmb], build_hd_variable(), frb_as_rules()
    )
    return FuzzyController(rb)


def sweep():
    params = SimulationParameters()
    t_ping = SCENARIO_PINGPONG.generate(params)
    t_cross = SCENARIO_CROSSING.generate(params)
    out = {}
    for ssn_shift, dmb_shift in PERTURBATIONS:
        flc = perturbed_flc(ssn_shift, dmb_shift)
        _, mp = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_ping
        )
        _, mc = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_cross
        )
        out[(ssn_shift, dmb_shift)] = (
            mp.n_handovers,
            mc.n_handovers,
            mp.n_ping_pongs + mc.n_ping_pongs,
        )
    return out


def test_x11_anchor_sensitivity(benchmark):
    results = run_once(benchmark, sweep)
    # the frozen reading reproduces the paper
    assert results[(0.0, 0.0)] == (0, 3, 0)
    for key, (ping_hos, cross_hos, pps) in results.items():
        # the crossing outcome is anchor-robust: 3 handovers everywhere,
        # never a ping-pong anywhere in the box
        assert cross_hos == 3, key
        assert pps == 0, key
    # the graze outcome survives the +1 dB / ±0.05 perturbations ...
    for key in [(0.0, 0.0), (+1.0, 0.0), (0.0, +0.05), (0.0, -0.05),
                (+1.0, +0.05)]:
        assert results[key][0] == 0, key
    # ... and sits within ~1 dB of the decision surface on the other
    # side — the paper's own razor-thin 0.693-vs-0.7 margin
    assert results[(-1.0, 0.0)][0] <= 1
