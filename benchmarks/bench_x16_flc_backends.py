"""X16 — compiled FLC decision kernels vs the grid Mamdani pipeline.

Two workloads through every registered :mod:`repro.fuzzy.compiled`
backend:

* **Kernel throughput** — ``X16_SAMPLES`` random (CSSP, SSN, DMB)
  triples through ``FuzzyController.evaluate_batch``.  The ISSUE-5
  acceptance pin: the ``lut`` backend (precompiled decision surface +
  multilinear interpolation) must be at least 5x faster than the
  ``reference`` grid pipeline at 10^5 samples.
* **End-to-end fleet** — the X15 3-cohort heterogeneous population of
  ``X16_FLEET_SIZE`` UEs through ``run_fleet``, once per FLC backend.
  Acceptance pins: ``lut`` at least 1.3x faster end-to-end than the
  PR 4 path (the ``reference`` backend), with *byte-identical*
  per-UE handover and ping-pong counts — the guard-banded decision
  path (:meth:`FuzzyHandoverSystem.decision_outputs_batch`) makes
  approximate kernels decision-exact by construction.

Optional accelerator backends (``numba``) are *reported* when
registered but never gated — their availability depends on the host;
their conformance is pinned separately by ``tests/fuzzy/test_compiled.py``.

LUT compilation is a one-time, process-cached cost (the table is shared
by every shard/run of a structurally equal controller), so both sides
warm up before the clock starts — the same convention X14 uses for JIT
backends.

Environment knobs: ``X16_SAMPLES`` (default 100000), ``X16_FLEET_SIZE``
(default 2000), ``X16_REPEATS`` (default 3, best-of timing).
"""

import os
import time

import numpy as np
import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.core.flc import build_handover_flc
from repro.fuzzy import available_flc_backends
from repro.mobility import GaussMarkov, ManhattanGrid, RandomWalk
from repro.sim import (
    PopulationSpec,
    SimulationParameters,
    UECohort,
    run_fleet,
)

N_SAMPLES = int(os.environ.get("X16_SAMPLES", "100000"))
N = int(os.environ.get("X16_FLEET_SIZE", "2000"))
REPEATS = int(os.environ.get("X16_REPEATS", "3"))
N_SAMPLES_ACCEPT = 100_000  # the kernel-throughput acceptance size
N_ACCEPT = 2000             # the end-to-end acceptance fleet size
KERNEL_SPEEDUP = 5.0        # lut vs reference on evaluate_batch
FLEET_SPEEDUP = 1.3         # lut vs reference end-to-end

FLC = build_handover_flc()

rng = np.random.default_rng(77)
INPUTS = {
    "CSSP": rng.uniform(-10.0, 10.0, N_SAMPLES),
    "SSN": rng.uniform(-120.0, -80.0, N_SAMPLES),
    "DMB": rng.uniform(0.0, 1.5, N_SAMPLES),
}

PARAMS = SimulationParameters(n_walks=8)

# the X15 reference heterogeneous workload: three archetypes with
# comparable expected path lengths, so backends see the same physics
THREE_COHORTS = PopulationSpec(
    n_ues=N,
    cohorts=(
        UECohort(
            name="pedestrian",
            model=RandomWalk(n_walks=8, mean_step_km=0.6, step_sigma_km=0.2),
            fraction=0.4,
            speed_range_kmh=(3.0, 6.0),
        ),
        UECohort(
            name="vehicular",
            model=ManhattanGrid(n_legs=8, block_km=0.4, max_blocks=2),
            fraction=0.3,
            speed_range_kmh=(30.0, 60.0),
        ),
        UECohort(
            name="highway",
            model=GaussMarkov(
                n_steps=8, alpha=0.9, mean_speed_km=0.6, sigma_km=0.15
            ),
            fraction=0.3,
            speed_range_kmh=(70.0, 120.0),
        ),
    ),
    params=PARAMS,
    base_seed=3000,
)


def time_kernel(backend):
    """Best-of-``REPEATS`` wall time of one backend over the workload
    (one warm-up pass first: LUT/JIT compilation happens off the clock)."""
    FLC.evaluate_batch(INPUTS, backend=backend)
    best = float("inf")
    for _ in range(max(1, REPEATS)):
        t0 = time.perf_counter()
        FLC.evaluate_batch(INPUTS, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best


def run_cohort_fleet(flc_backend):
    return run_fleet(
        THREE_COHORTS.to_fleet_spec(), n_shards=1, flc_backend=flc_backend
    )


@pytest.mark.flc_backend
@pytest.mark.benchmark(group="x16-flc-backends")
@pytest.mark.parametrize("name", sorted(available_flc_backends()))
def test_x16_kernel_timing(benchmark, name):
    FLC.evaluate_batch(INPUTS, backend=name)  # warm-up / compile
    out = run_once(benchmark, FLC.evaluate_batch, INPUTS, backend=name)
    assert out.shape == (N_SAMPLES,)


@pytest.mark.flc_backend
def test_x16_kernel_speedup_lut():
    """ISSUE-5 acceptance: the lut kernel >= 5x over the reference grid
    pipeline on evaluate_batch at 10^5 samples."""
    t_ref = time_kernel("reference")
    t_lut = time_kernel("lut")
    speedup = t_ref / t_lut
    timings = {"reference": t_ref, "lut": t_lut}
    lines = [
        f"\nx16: evaluate_batch over {N_SAMPLES:,} samples",
        f"  reference {t_ref * 1e3:9.2f} ms",
        f"  lut       {t_lut * 1e3:9.2f} ms  ({speedup:.1f}x)",
    ]
    # report (never gate) whatever optional kernels this host has
    for name in sorted(set(available_flc_backends()) - {"reference", "lut"}):
        t = time_kernel(name)
        timings[name] = t
        lines.append(
            f"  {name:<9} {t * 1e3:9.2f} ms  ({t_ref / t:.1f}x)"
        )
    print("\n".join(lines))
    _, _, mem_ref = run_measured(
        FLC.evaluate_batch, INPUTS, backend="reference"
    )
    _, _, mem_lut = run_measured(FLC.evaluate_batch, INPUTS, backend="lut")
    write_bench_artifact(
        "x16",
        n=N_SAMPLES,
        backend="lut",
        timings_s=timings,
        speedups={"lut_vs_reference_evaluate_batch": speedup},
        memory={
            "tracemalloc_peak_reference": mem_ref,
            "tracemalloc_peak_lut": mem_lut,
        },
        fleet_size=N,
    )

    if N_SAMPLES < N_SAMPLES_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_SAMPLES_ACCEPT}, ran "
            f"N={N_SAMPLES} (smoke mode)"
        )
    assert speedup >= KERNEL_SPEEDUP, (
        f"lut kernel only {speedup:.2f}x over the reference pipeline "
        f"(target {KERNEL_SPEEDUP}x at {N_SAMPLES} samples)"
    )


@pytest.mark.flc_backend
def test_x16_fleet_speedup_and_identical_decisions():
    """ISSUE-5 acceptance: the 3-cohort N = 2000 fleet >= 1.3x faster
    on the lut backend than on the PR 4 reference path, with
    byte-identical per-UE handover and ping-pong counts (asserted at
    the full fleet size; the count identity holds at every size)."""
    # one warm-up pass each (imports, allocator, LUT compile) — traced
    # so the artifact gets per-path peaks — then interleaved best-of
    # timings so clock drift hits both paths alike
    ref, _, mem_fleet_ref = run_measured(run_cohort_fleet, "reference")
    lut, _, mem_fleet_lut = run_measured(run_cohort_fleet, "lut")
    decisions_identical = bool(
        np.array_equal(ref.handovers_per_ue, lut.handovers_per_ue)
        and np.array_equal(ref.ping_pongs_per_ue, lut.ping_pongs_per_ue)
    )

    repeats = max(1, REPEATS - 1) if N >= N_ACCEPT else 1
    t_ref = t_lut = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_cohort_fleet("reference")
        t_ref = min(t_ref, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_cohort_fleet("lut")
        t_lut = min(t_lut, time.perf_counter() - t0)

    speedup = t_ref / t_lut
    print(
        f"\nx16: 3-cohort fleet of {N} UEs — reference {t_ref:.2f} s, "
        f"lut {t_lut:.2f} s -> {speedup:.2f}x "
        f"({ref.n_handovers} handovers, {ref.n_ping_pongs} ping-pongs "
        "on the reference backend)"
    )
    # persist the record before any assert: the perf trajectory matters
    # most on exactly the runs where a pin fails
    write_bench_artifact(
        "x16_fleet",
        n=N,
        backend="lut",
        timings_s={"reference": t_ref, "lut": t_lut},
        speedups={"lut_vs_reference_fleet": speedup},
        memory={
            "tracemalloc_peak_reference": mem_fleet_ref,
            "tracemalloc_peak_lut": mem_fleet_lut,
        },
        n_handovers=int(ref.n_handovers),
        n_ping_pongs=int(ref.n_ping_pongs),
        decisions_identical=decisions_identical,
    )

    # decision equivalence is pinned wherever the bench runs
    assert decisions_identical
    assert ref.n_handovers == lut.n_handovers
    assert ref.n_ping_pongs == lut.n_ping_pongs
    if N < N_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    assert speedup >= FLEET_SPEEDUP, (
        f"lut-backend fleet only {speedup:.2f}x over the reference path "
        f"(target {FLEET_SPEEDUP}x at N={N})"
    )
