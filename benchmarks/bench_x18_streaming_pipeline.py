"""X18 — epoch-tiled streaming measurement vs the materialized pipeline.

The same fleet spec through ``run_fleet`` with the measurement pass
materialized up front (``tile_epochs=0``, the pre-PR-7 behaviour) and
streamed through ``X18_TILE``-epoch tiles (``tile_epochs=16``).  The
streamed path keeps only the mobility arrays and one recycled
``(N, tile, cells)`` power buffer resident, so its peak footprint is
O(N·tile·cells) in place of the materialized O(N·T·cells) power cube.

``test_x18_streaming_memory_and_runtime`` is the ISSUE-7 acceptance
check, asserted at the full N = 20000 × T ≈ 200 workload: peak traced
memory at least 4× below the materialized path, end-to-end runtime no
worse than 1.05× — and byte-identical ``FleetMetrics`` at every size.
``test_x18_tile_identity`` pins the identity across
``tile_epochs ∈ {1, 3, 64}`` against the auto policy (``None``) at a
size every CI run affords.  ``test_x18_scale_datapoint`` records the
repo's first N = 10^5 fleet run (tiny horizon, streamed) into the same
``BENCH_x18.json``.

Environment knobs: ``X18_FLEET_SIZE`` (default 20000), ``X18_WALKS``
(default 17, ≈ 204 measurement epochs), ``X18_TILE`` (default 16),
``X18_SCALE_UES`` (default 100000), ``X18_SCALE_WALKS`` (default 2).
"""

import json
import os

import numpy as np
import pytest
from conftest import bench_artifact_path, run_measured, write_bench_artifact

from repro.sim import FleetSpec, SimulationParameters, run_fleet

N = int(os.environ.get("X18_FLEET_SIZE", "20000"))
WALKS = int(os.environ.get("X18_WALKS", "17"))
TILE = int(os.environ.get("X18_TILE", "16"))
SCALE_UES = int(os.environ.get("X18_SCALE_UES", "100000"))
SCALE_WALKS = int(os.environ.get("X18_SCALE_WALKS", "2"))
N_ACCEPT = 20000        # the acceptance-criterion fleet size
MEMORY_RATIO = 4.0      # materialized peak / streamed peak, at least
RUNTIME_RATIO = 1.05    # streamed / materialized wall-clock, at most

PARAMS = SimulationParameters(n_walks=WALKS)
SPEC = FleetSpec(n_ues=N, n_walks=WALKS, base_seed=3000, params=PARAMS)


def run_materialized():
    return run_fleet(SPEC, n_shards=1, tile_epochs=0)


def run_streamed():
    return run_fleet(SPEC, n_shards=1, tile_epochs=TILE)


def assert_identical_metrics(got, ref):
    """Byte-identity down to the per-UE arrays (dataclass ``==`` only
    covers the scalar aggregates)."""
    assert got == ref
    for name in (
        "handovers_per_ue",
        "ping_pongs_per_ue",
        "necessary_per_ue",
        "epochs_per_ue",
        "wrong_epochs_per_ue",
        "outage_epochs_per_ue",
        "dwell_epochs_per_ue",
        "dwell_count_per_ue",
        "output_sum_per_ue",
        "output_count_per_ue",
        "output_max_per_ue",
    ):
        np.testing.assert_array_equal(
            getattr(got, name), getattr(ref, name), err_msg=name
        )


@pytest.mark.streaming
def test_x18_tile_identity():
    """Streaming is a memory knob, not a physics knob: every tile width
    reproduces the auto-policy metrics bit-for-bit (asserted at a size
    every CI run affords)."""
    params = SimulationParameters(n_walks=8)
    spec = FleetSpec(n_ues=32, n_walks=8, base_seed=3000, params=params)
    ref = run_fleet(spec, n_shards=1, tile_epochs=None)
    for k in (1, 3, 64):
        assert_identical_metrics(
            run_fleet(spec, n_shards=1, tile_epochs=k), ref
        )


@pytest.mark.streaming
def test_x18_streaming_memory_and_runtime():
    """ISSUE-7 acceptance: >= 4x lower peak memory and <= 1.05x runtime
    vs the materialized pipeline at N = 20000 x T ~ 200, byte-identical
    metrics at every size."""
    streamed, t_streamed, mem_streamed = run_measured(run_streamed)
    materialized, t_mat, mem_mat = run_measured(run_materialized)

    # streaming must never change the physics, whatever the fleet size
    assert_identical_metrics(streamed, materialized)

    mem_ratio = mem_mat / mem_streamed
    time_ratio = t_streamed / t_mat
    print(
        f"\nx18: materialized {t_mat:.2f} s / {mem_mat / 2**20:.0f} MiB "
        f"peak, streamed (tile={TILE}) {t_streamed:.2f} s / "
        f"{mem_streamed / 2**20:.0f} MiB peak over {N} UEs "
        f"-> {mem_ratio:.1f}x less memory, {time_ratio:.3f}x runtime"
    )
    # persist the record before any assert: the perf trajectory matters
    # most on exactly the runs where a pin fails
    write_bench_artifact(
        "x18",
        n=N,
        timings_s={"materialized": t_mat, "streamed": t_streamed},
        speedups={
            "memory_reduction_streamed": mem_ratio,
            "runtime_streamed_vs_materialized_ratio": time_ratio,
        },
        memory={
            "tracemalloc_peak_materialized": mem_mat,
            "tracemalloc_peak_streamed": mem_streamed,
        },
        walks=WALKS,
        tile_epochs=TILE,
    )
    if N < N_ACCEPT:
        pytest.skip(
            f"pins asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    assert mem_ratio >= MEMORY_RATIO, (
        f"streamed peak memory only {mem_ratio:.2f}x below the "
        f"materialized path (target {MEMORY_RATIO}x at N={N})"
    )
    assert time_ratio <= RUNTIME_RATIO, (
        f"streamed runtime {time_ratio:.3f}x the materialized path "
        f"(budget {RUNTIME_RATIO}x at N={N})"
    )


@pytest.mark.streaming
def test_x18_scale_datapoint():
    """The ROADMAP's N = 10^5 scaling datapoint: a tiny-horizon fleet
    through the streamed pipeline, merged into ``BENCH_x18.json``."""
    params = SimulationParameters(n_walks=SCALE_WALKS)
    spec = FleetSpec(
        n_ues=SCALE_UES, n_walks=SCALE_WALKS, base_seed=3000, params=params
    )
    fleet, t, mem = run_measured(
        run_fleet, spec, n_shards=1, tile_epochs=TILE
    )
    assert fleet.n_ues == SCALE_UES
    print(
        f"\nx18 scale: {SCALE_UES} UEs x {SCALE_WALKS} walks streamed in "
        f"{t:.2f} s, {mem / 2**20:.0f} MiB peak "
        f"({fleet.n_handovers} handovers)"
    )
    # read-modify-write: ride in the pin test's artifact when it exists
    # (fresh file otherwise, e.g. running this test alone)
    path = bench_artifact_path("x18")
    if not path.exists():
        write_bench_artifact("x18", n=N, walks=WALKS, tile_epochs=TILE)
    payload = json.loads(path.read_text())
    payload["scale"] = {
        "n_ues": SCALE_UES,
        "walks": SCALE_WALKS,
        "tile_epochs": TILE,
        "elapsed_s": float(t),
        "tracemalloc_peak_streamed": int(mem),
        "n_handovers": int(fleet.n_handovers),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
