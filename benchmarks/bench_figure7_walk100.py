"""F7 — regenerate paper Fig. 7 (random-walk pattern, ping-pong walk).

The frozen seed must reproduce the paper's printed cell sequence
``(0,0) → (2,-1) → (0,0) → (1,-2)`` exactly.
"""

from repro.experiments import figure_7


def test_figure7_pingpong_walk(benchmark):
    fig = benchmark(figure_7)
    assert fig.meta["cell_sequence"] == [(0, 0), (2, -1), (0, 0), (1, -2)]
    assert len(fig.meta["waypoints"]) == 6  # nwalk = 5
    assert fig.render()
