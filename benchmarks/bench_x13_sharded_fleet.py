"""X13 — sharded fleet execution vs the single-shard batch engine.

The same fleet spec (independent seeded walks, paper physics, streaming
metrics) through ``run_fleet`` with one shard in-process and with
``X13_SHARDS`` shards over ``X13_WORKERS`` pool workers.  Sharding is
bit-identical by construction (the tier-1 suite pins per-UE logs and
merged metrics); the point here is wall-clock scaling on top of PR 1's
X12 vectorisation.

``test_x13_speedup_sharded`` is the ISSUE-2 acceptance check: at
N = 2000 UEs with 4 workers the sharded path must be at least 2× faster
end-to-end than the unsharded batch engine.  The assertion only runs
where it can physically hold (enough cores and the full fleet size);
smaller runs — e.g. the CI smoke at tiny N — still verify that the
sharded metrics merge to exactly the unsharded result.

Environment knobs: ``X13_FLEET_SIZE`` (default 2000), ``X13_SHARDS``
(default 4), ``X13_WORKERS`` (default 4).
"""

import os

import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.sim import FleetSpec, SimulationParameters, run_fleet

N = int(os.environ.get("X13_FLEET_SIZE", "2000"))
SHARDS = int(os.environ.get("X13_SHARDS", "4"))
WORKERS = int(os.environ.get("X13_WORKERS", "4"))
N_ACCEPT = 2000     # the acceptance-criterion fleet size

PARAMS = SimulationParameters(n_walks=8)
SPEC = FleetSpec(
    n_ues=N,
    n_walks=8,
    base_seed=3000,
    params=PARAMS,
)


def run_unsharded():
    return run_fleet(SPEC, n_shards=1)


def run_sharded():
    return run_fleet(SPEC, n_shards=SHARDS, max_workers=WORKERS)


@pytest.mark.benchmark(group="x13-sharded-fleet")
def test_x13_unsharded_fleet(benchmark):
    fleet = run_once(benchmark, run_unsharded)
    assert fleet.n_ues == N


@pytest.mark.benchmark(group="x13-sharded-fleet")
def test_x13_sharded_fleet(benchmark):
    fleet = run_once(benchmark, run_sharded)
    assert fleet.n_ues == N


def test_x13_speedup_sharded():
    """ISSUE-2 acceptance: >= 2x over the unsharded batch engine at
    N = 2000 with 4 workers (asserted where the hardware allows)."""
    sharded, t_sharded, mem_sharded = run_measured(run_sharded)
    unsharded, t_unsharded, mem_unsharded = run_measured(run_unsharded)

    # sharding must never change the physics, whatever the fleet size
    assert sharded == unsharded

    speedup = t_unsharded / t_sharded
    print(
        f"\nx13: unsharded {t_unsharded:.2f} s, "
        f"{SHARDS} shards x {WORKERS} workers {t_sharded:.2f} s "
        f"-> {speedup:.2f}x over {N} UEs"
    )
    write_bench_artifact(
        "x13",
        n=N,
        timings_s={"unsharded": t_unsharded, "sharded": t_sharded},
        speedups={"sharded_vs_unsharded": speedup},
        memory={
            "tracemalloc_peak_unsharded": mem_unsharded,
            "tracemalloc_peak_sharded": mem_sharded,
        },
        shards=SHARDS,
        workers=WORKERS,
    )
    cores = os.cpu_count() or 1
    if N < N_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    if cores < WORKERS:
        pytest.skip(
            f"speedup needs >= {WORKERS} cores, host has {cores}"
        )
    assert speedup >= 2.0, (
        f"sharded fleet only {speedup:.2f}x faster than the unsharded "
        f"batch engine (target 2x at N={N}, {WORKERS} workers)"
    )
