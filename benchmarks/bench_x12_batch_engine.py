"""X12 — the vectorised batch engine vs N scalar simulator runs.

The same mixed-speed fleet (independent seeded walks, paper physics)
through :class:`repro.sim.batch.BatchSimulator` in one lockstep pass and
through N fresh scalar :class:`~repro.sim.engine.Simulator` runs.  The
per-UE logs are identical by construction (the equivalence suite pins
them bit-for-bit); the point here is throughput: one batched FLC call
per epoch across the fleet instead of one Python-loop pipeline per UE.

``test_x12_speedup_at_n1000`` is the ISSUE-1 acceptance check: at
N = 1000 UEs the batch path must be at least 10× faster end-to-end
(measurement + simulation) than the N scalar runs (asserted at the
full fleet size; ``X12_FLEET_SIZE`` shrinks the run for CI smoke,
which still regenerates the ``BENCH_x12.json`` artifact).
"""

import os

import numpy as np
import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.core import FuzzyHandoverSystem
from repro.mobility import TraceBatch
from repro.sim import (
    BatchSimulator,
    MeasurementSampler,
    SimulationParameters,
    Simulator,
)

PARAMS = SimulationParameters(n_walks=10)
BASE_SEED = 2000
N_BENCH = 200       # calibrated-group size (keeps the scalar side short)
N_ACCEPT = 1000     # the acceptance-criterion fleet size
N_FULL = int(os.environ.get("X12_FLEET_SIZE", str(N_ACCEPT)))


def make_sampler():
    return MeasurementSampler(
        PARAMS.make_layout(),
        PARAMS.make_propagation(),
        spacing_km=PARAMS.measurement_spacing_km,
    )


def fleet_speeds(n):
    return np.array([10.0 * (i % 6) for i in range(n)])


def fleet_traces(n):
    walk = PARAMS.make_walk()
    return [walk.generate_seeded(BASE_SEED + i) for i in range(n)]


def run_scalar_fleet(traces, speeds):
    sampler = make_sampler()
    out = []
    for trace, speed in zip(traces, speeds):
        system = FuzzyHandoverSystem(cell_radius_km=PARAMS.cell_radius_km)
        out.append(
            Simulator(system, speed_kmh=float(speed)).run(
                sampler.measure(trace)
            )
        )
    return out


def run_batch_fleet(traces, speeds):
    sampler = make_sampler()
    series = sampler.measure_batch(TraceBatch.from_traces(traces))
    system = FuzzyHandoverSystem(cell_radius_km=PARAMS.cell_radius_km)
    return BatchSimulator(system, speed_kmh=speeds).run(series)


@pytest.mark.benchmark(group="x12-batch-engine")
def test_x12_scalar_fleet(benchmark):
    traces = fleet_traces(N_BENCH)
    results = run_once(
        benchmark, run_scalar_fleet, traces, fleet_speeds(N_BENCH)
    )
    assert len(results) == N_BENCH


@pytest.mark.benchmark(group="x12-batch-engine")
def test_x12_batch_fleet(benchmark):
    traces = fleet_traces(N_BENCH)
    result = run_once(
        benchmark, run_batch_fleet, traces, fleet_speeds(N_BENCH)
    )
    assert result.n_ues == N_BENCH
    # correctness spot-check against the scalar path
    scalar = run_scalar_fleet(traces[:5], fleet_speeds(N_BENCH)[:5])
    for i, s in enumerate(scalar):
        b = result.ue_result(i)
        assert b.serving_history == s.serving_history
        np.testing.assert_array_equal(b.outputs, s.outputs)
        assert [e.step for e in b.events] == [e.step for e in s.events]


def test_x12_speedup_at_n1000():
    """ISSUE-1 acceptance: >= 10x over N scalar runs at N = 1000
    (asserted at the full fleet size)."""
    traces = fleet_traces(N_FULL)
    speeds = fleet_speeds(N_FULL)

    batch, t_batch, mem_batch = run_measured(run_batch_fleet, traces, speeds)
    scalar, t_scalar, mem_scalar = run_measured(
        run_scalar_fleet, traces, speeds
    )

    assert batch.n_ues == len(scalar) == N_FULL
    assert batch.n_handovers == sum(r.n_handovers for r in scalar)
    speedup = t_scalar / t_batch
    print(f"\nx12: scalar {t_scalar:.2f} s, batch {t_batch:.2f} s "
          f"-> {speedup:.1f}x over {N_FULL} UEs")
    write_bench_artifact(
        "x12",
        n=N_FULL,
        timings_s={"scalar": t_scalar, "batch": t_batch},
        speedups={"batch_vs_scalar": speedup},
        memory={
            "tracemalloc_peak_scalar": mem_scalar,
            "tracemalloc_peak_batch": mem_batch,
        },
        n_handovers=int(batch.n_handovers),
    )
    if N_FULL < N_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_ACCEPT}, ran N={N_FULL} (smoke mode)"
        )
    assert speedup >= 10.0, (
        f"batch engine only {speedup:.1f}x faster than {N_ACCEPT} "
        f"scalar runs (target 10x)"
    )
