"""T3 — regenerate paper Table 3 (ping-pong walk, speed sweep).

Runs the full pipeline over the frozen boundary walk at 0–50 km/h and
asserts the paper's headline: every measurement-point output stays at or
below the 0.7 threshold and the system executes **zero** handovers — the
ping-pong effect is avoided.
"""

from conftest import run_once

from repro.experiments import table_3
from repro.sim import PAPER_SPEEDS_KMH


def test_table3_pingpong_walk(benchmark):
    table = run_once(benchmark, table_3)
    assert table.handovers_by_speed() == {v: 0 for v in PAPER_SPEEDS_KMH}
    assert table.all_below_threshold()
    assert all(r.n_ping_pongs == 0 for r in table.rows)
    # artefact renders in the paper's row layout
    text = table.render()
    assert "System Output Value" in text
    assert "Speed 50 km/h" in text
