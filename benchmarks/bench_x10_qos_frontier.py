"""X10 — the QoS frontier: call drops vs wasted signalling.

The paper's introduction frames handover quality as a QoS balance.
This bench runs the session layer (outage → call drop; handovers →
signalling cost) over a fading workload and asserts the frame holds:

* "never hand over" minimises signalling but drops calls;
* "always strongest" never drops but wastes signalling on ping-pong;
* the fuzzy system keeps **both** low — that is the paper's point.
"""

from conftest import run_once

from repro.core import Decision, EwmaFilter, FuzzyHandoverSystem, HysteresisHandover
from repro.sim import (
    MeasurementSampler,
    SimulationParameters,
    Simulator,
    evaluate_session,
)

PARAMS = SimulationParameters(
    n_walks=14,
    measurement_spacing_km=0.1,
    shadow_sigma_db=4.0,
    shadow_decorrelation_km=0.1,
)
N_WALKS = 12
SENSITIVITY = -97.0


class _Never:
    def reset(self):
        pass

    def decide(self, obs):
        return Decision(handover=False, stage="never")


def policies():
    return {
        "fuzzy": EwmaFilter(FuzzyHandoverSystem(cell_radius_km=1.0), 0.3),
        "strongest-raw": HysteresisHandover(margin_db=0.0),
        "never": _Never(),
    }


def sweep():
    layout = PARAMS.make_layout()
    prop = PARAMS.make_propagation()
    walk = PARAMS.make_walk()
    totals = {
        name: {"dropped": 0, "waste": 0.0, "cost": 0.0}
        for name in policies()
    }
    for seed in range(N_WALKS):
        trace = walk.generate_seeded(seed)
        sampler = MeasurementSampler(
            layout,
            prop,
            spacing_km=PARAMS.measurement_spacing_km,
            fading=PARAMS.make_fading(rng=seed),
        )
        series = sampler.measure(trace)
        for name, policy in policies().items():
            result = Simulator(policy).run(series)
            s = evaluate_session(
                result, sensitivity_dbw=SENSITIVITY, drop_after_km=0.4
            )
            totals[name]["dropped"] += int(s.dropped)
            totals[name]["waste"] += s.wasted_signalling_fraction
            totals[name]["cost"] += s.signalling_cost
    for t in totals.values():
        t["waste"] /= N_WALKS
        t["cost"] /= N_WALKS
    return totals


def test_x10_qos_frontier(benchmark):
    results = run_once(benchmark, sweep)
    fuzzy = results["fuzzy"]
    never = results["never"]
    greedy = results["strongest-raw"]
    # refusing to hand over drops calls; greedy camping does not
    assert never["dropped"] > greedy["dropped"]
    assert never["cost"] == 0.0
    # greedy camping burns far more signalling than the fuzzy system
    assert greedy["cost"] > 2.0 * fuzzy["cost"]
    assert greedy["waste"] > fuzzy["waste"]
    # the fuzzy system holds both failure modes down simultaneously
    assert fuzzy["dropped"] <= never["dropped"]
    assert fuzzy["cost"] < greedy["cost"]
