"""X7 — pipeline-stage ablation: what do POTLC/PRTLC/CSSP-lag buy?

The paper's system is more than the FLC: the POTLC gates evaluation
while the serving signal is healthy, and the PRTLC cancels handovers
whose trigger already recovered.  This bench removes each stage on the
frozen scenarios and on a fading workload, quantifying each stage's
contribution to ping-pong avoidance.
"""

from conftest import run_once

from repro.core import FuzzyHandoverSystem
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.sim import SimulationParameters, run_grid, summarize_outcomes, run_trace


def ablate():
    params = SimulationParameters()
    t_ping = SCENARIO_PINGPONG.generate(params)
    t_cross = SCENARIO_CROSSING.generate(params)
    fading = SimulationParameters(
        n_walks=8,
        measurement_spacing_km=0.1,
        shadow_sigma_db=4.0,
        shadow_decorrelation_km=0.1,
    )
    out = {}
    variants = {
        "full": {},
        "no-prtlc": {"prtlc_enabled": False},
        "lag-10": {"cssp_lag": 10},
    }
    for name, kwargs in variants.items():
        _, mp = run_trace(
            params, FuzzyHandoverSystem(cell_radius_km=1.0, **kwargs), t_ping
        )
        _, mc = run_trace(
            params, FuzzyHandoverSystem(cell_radius_km=1.0, **kwargs), t_cross
        )
        spec = ("fuzzy", {"smoothing_alpha": 0.3, **kwargs})
        fade = summarize_outcomes(run_grid(fading, spec, list(range(6))))
        out[name] = {
            "ping_handovers": mp.n_handovers,
            "cross_handovers": mc.n_handovers,
            "fading_pp_per_run": fade["ping_pongs_per_run"],
        }
    return out


def test_x7_pipeline_ablation(benchmark):
    results = run_once(benchmark, ablate)
    full = results["full"]
    # the complete pipeline reproduces the paper
    assert full["ping_handovers"] == 0
    assert full["cross_handovers"] == 3
    # without the PRTLC the boundary graze slips through (the FLC alone
    # wants that handover — the second look is what cancels it)
    assert results["no-prtlc"]["ping_handovers"] >= 1
    # an aggressive CSSP reporting interval (lag 10 epochs = 0.5 km)
    # also fires on the ping-pong walk: the paper's short interval is
    # part of the design
    assert results["lag-10"]["ping_handovers"] >= 1
    # under fading, the full pipeline keeps ping-pong at least as low
    # as every ablated variant
    for name, r in results.items():
        assert full["fading_pp_per_run"] <= r["fading_pp_per_run"] + 0.35, name
