"""X20 — crash-recovery time of the checkpointed fleet runner.

Times three runs of the same checkpointed workload
(:func:`~repro.resilience.run_fleet_checkpointed`):

* **uninterrupted** — the baseline, checkpointing every tile;
* **crashed** — the identical run killed by an injected
  ``checkpoint``-scope crash at roughly the middle checkpoint (epoch
  T/2);
* **resume** — the run restarted on the crashed directory, finishing
  from the last snapshot.

Pins the recovery SLO: crashed + resume wall-clock at most
``X20_RECOVERY_RATIO`` (default 1.6) times the uninterrupted run — the
price of dying halfway is bounded by the checkpoint cadence, not by
recomputing the fleet — and re-asserts the resumed ``FleetMetrics``
are byte-identical to the uninterrupted run at bench size.

Headline numbers land in ``BENCH_x20.json`` (same schema as X12–X19)
**before** any assert.

Environment knobs: ``X20_FLEET_SIZE`` (default 2000), ``X20_WALKS``
(default 5), ``X20_TILE`` (default 8), ``X20_RECOVERY_RATIO``
(default 1.6).  CI smoke runs a tiny fleet; the SLO pin asserts only
at the full N = 2000.
"""

import math
import os
import pickle
import time

import pytest
from conftest import write_bench_artifact

from repro.resilience import (
    FaultPlan,
    FaultRule,
    SimulatedCrash,
    run_fleet_checkpointed,
)
from repro.sim import FleetSpec, SimulationParameters

N = int(os.environ.get("X20_FLEET_SIZE", "2000"))
WALKS = int(os.environ.get("X20_WALKS", "5"))
TILE = int(os.environ.get("X20_TILE", "8"))
RECOVERY_RATIO = float(os.environ.get("X20_RECOVERY_RATIO", "1.6"))
N_ACCEPT = 2000         # the acceptance-criterion fleet size
TIMER_SLACK_S = 0.25    # absolute allowance for scheduler noise

PARAMS = SimulationParameters(shadow_sigma_db=6.0, n_walks=WALKS)
SPEC = FleetSpec(n_ues=N, n_walks=WALKS, base_seed=7000, params=PARAMS)


def frozen(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def timed_run(directory, fault_plan=None):
    t0 = time.perf_counter()
    try:
        result = run_fleet_checkpointed(
            SPEC,
            checkpoint_dir=directory,
            tile_epochs=TILE,
            fault_plan=fault_plan,
        )
    except SimulatedCrash:
        result = None
    return result, time.perf_counter() - t0


@pytest.mark.resilience
def test_x20_crash_recovery_time(tmp_path):
    reference, t_full = timed_run(tmp_path / "uninterrupted")

    # the crash lands at the middle checkpoint — epoch ~T/2
    total_epochs = int(reference.epochs_per_ue.max())
    n_checkpoints = math.ceil(total_epochs / TILE)
    crash_at = max(1, n_checkpoints // 2)
    plan = FaultPlan(
        seed=20,
        rules=(
            FaultRule(scope="checkpoint", mode="crash", after=crash_at),
        ),
    )

    victim_dir = tmp_path / "victim"
    crashed, t_crashed = timed_run(victim_dir, fault_plan=plan)
    assert crashed is None, "the injected crash never fired"
    resumed, t_resume = timed_run(victim_dir)

    t_recovery = t_crashed + t_resume
    overhead = t_recovery / t_full if t_full > 0 else float("inf")
    write_bench_artifact(
        "x20",
        n=N,
        timings_s={
            "uninterrupted_s": t_full,
            "crashed_run_s": t_crashed,
            "resume_s": t_resume,
            "recovery_total_s": t_recovery,
        },
        speedups={"recovery_overhead": overhead},
        walks=WALKS,
        tile_epochs=TILE,
        total_epochs=total_epochs,
        crash_at_checkpoint=crash_at,
        n_checkpoints=n_checkpoints,
        recovery_ratio_max=RECOVERY_RATIO,
        byte_identical=bool(frozen(resumed) == frozen(reference)),
    )

    # identity is non-negotiable at every size
    assert frozen(resumed) == frozen(reference)
    if N >= N_ACCEPT:
        assert t_recovery <= RECOVERY_RATIO * t_full + TIMER_SLACK_S, (
            f"recovery took {t_recovery:.2f}s vs uninterrupted "
            f"{t_full:.2f}s (ratio {overhead:.2f}, "
            f"max {RECOVERY_RATIO})"
        )
