"""X17 — distributed fleet execution over localhost socket workers.

The same fleet spec through ``run_fleet`` serially (one shard,
in-process) and distributed over real ``python -m repro worker``
subprocesses reached by TCP (the
:class:`~repro.sim.distributed.DistributedExecutor` backend) — the
exact process/socket boundary a multi-host deployment crosses, minus
the network latency.

``test_x17_speedup_distributed`` is the ISSUE-6 acceptance check: at
N = 2000 UEs over ``X17_WORKERS`` (default 4) localhost workers the
distributed path must be at least 1.5× faster end-to-end than the
serial run, and byte-identical to it at every size (asserted even in
CI smoke mode at tiny N).  ``test_x17_fault_reissue`` kills one worker
mid-shard (``--die-after`` fault injection) and requires the merged
metrics to stay byte-identical through the reissue — the distributed
layer's whole fault-tolerance claim in one assert.

Environment knobs: ``X17_FLEET_SIZE`` (default 2000), ``X17_SHARDS``
(default 8), ``X17_WORKERS`` (default 4).
"""

import os

import pytest
from conftest import run_measured, run_once, write_bench_artifact

from repro.sim import (
    DistributedExecutor,
    FleetSpec,
    SimulationParameters,
    local_worker_pool,
    run_fleet,
)

N = int(os.environ.get("X17_FLEET_SIZE", "2000"))
SHARDS = int(os.environ.get("X17_SHARDS", "8"))
WORKERS = int(os.environ.get("X17_WORKERS", "4"))
N_ACCEPT = 2000     # the acceptance-criterion fleet size
SPEEDUP_ACCEPT = 1.5

PARAMS = SimulationParameters(n_walks=8)
SPEC = FleetSpec(
    n_ues=N,
    n_walks=8,
    base_seed=3000,
    params=PARAMS,
)


def run_serial():
    return run_fleet(SPEC, n_shards=1)


def run_distributed(hosts):
    return run_fleet(SPEC, n_shards=SHARDS, hosts=hosts)


@pytest.mark.benchmark(group="x17-distributed-fleet")
def test_x17_serial_fleet(benchmark):
    fleet = run_once(benchmark, run_serial)
    assert fleet.n_ues == N


@pytest.mark.benchmark(group="x17-distributed-fleet")
def test_x17_distributed_fleet(benchmark):
    with local_worker_pool(WORKERS) as hosts:
        fleet = run_once(benchmark, run_distributed, hosts)
    assert fleet.n_ues == N


def test_x17_speedup_distributed():
    """ISSUE-6 acceptance: >= 1.5x over the serial run at N = 2000 with
    4 localhost socket workers (asserted where the hardware allows);
    byte-identical merged metrics at every size."""
    with local_worker_pool(WORKERS) as hosts:
        distributed, t_distributed, mem_distributed = run_measured(
            run_distributed, hosts
        )

    serial, t_serial, mem_serial = run_measured(run_serial)

    # distribution must never change the physics, whatever the size
    assert distributed == serial

    speedup = t_serial / t_distributed
    print(
        f"\nx17: serial {t_serial:.2f} s, {SHARDS} shards over "
        f"{WORKERS} socket workers {t_distributed:.2f} s "
        f"-> {speedup:.2f}x over {N} UEs"
    )
    write_bench_artifact(
        "x17",
        n=N,
        timings_s={"serial": t_serial, "distributed": t_distributed},
        speedups={"distributed_vs_serial": speedup},
        memory={
            "tracemalloc_peak_serial": mem_serial,
            "tracemalloc_peak_distributed": mem_distributed,
        },
        shards=SHARDS,
        workers=WORKERS,
        transport="tcp-localhost",
    )
    cores = os.cpu_count() or 1
    if N < N_ACCEPT:
        pytest.skip(
            f"speedup asserted at N={N_ACCEPT}, ran N={N} (smoke mode)"
        )
    if cores < WORKERS:
        pytest.skip(
            f"speedup needs >= {WORKERS} cores, host has {cores}"
        )
    assert speedup >= SPEEDUP_ACCEPT, (
        f"distributed fleet only {speedup:.2f}x faster than the serial "
        f"run (target {SPEEDUP_ACCEPT}x at N={N}, {WORKERS} workers)"
    )


def test_x17_fault_reissue():
    """ISSUE-6 acceptance: kill one worker mid-run; shard reissue to the
    survivor must keep the merged metrics byte-identical."""
    serial = run_serial()
    # worker 0 exits abruptly while handling its first shard
    with local_worker_pool(2, die_after=[1, None]) as hosts:
        executor = DistributedExecutor(
            hosts, backoff_base=0.05, heartbeat_timeout=5.0
        )
        survived = run_fleet(SPEC, n_shards=max(SHARDS, 4),
                             executor=executor)
    assert survived == serial, (
        "merged metrics diverged after worker death + shard reissue"
    )
