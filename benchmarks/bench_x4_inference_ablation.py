"""X4 — inference-operator ablation (min–max vs prod–bsum).

Swaps the Mamdani conjunction/aggregation operators and checks how much
the decision surface moves and whether the scenario outcomes survive.

Finding (asserted below): the conjunction t-norm barely matters
(prod ≈ min on a Ruspini partition), but the paper's **max aggregation
is load-bearing** — bounded-sum aggregation adds up the several rules
that share an HG consequent, lifts boundary-graze outputs past 0.7, and
re-introduces the false handover on the ping-pong walk.
"""

import numpy as np
from conftest import run_once

from repro.core import FuzzyHandoverSystem, build_handover_flc
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.sim import SimulationParameters, run_trace

RNG = np.random.default_rng(7)
GRID = {
    "CSSP": RNG.uniform(-10, 10, 400),
    "SSN": RNG.uniform(-120, -80, 400),
    "DMB": RNG.uniform(0, 1.5, 400),
}

VARIANTS = {
    "min-max": dict(and_method="min", agg_method="max"),
    "prod-max": dict(and_method="prod", agg_method="max"),
    "min-bsum": dict(and_method="min", agg_method="bsum"),
    "prod-bsum": dict(and_method="prod", agg_method="bsum"),
}


def ablate():
    params = SimulationParameters()
    t_ping = SCENARIO_PINGPONG.generate(params)
    t_cross = SCENARIO_CROSSING.generate(params)
    ref = build_handover_flc(**VARIANTS["min-max"]).evaluate_batch(GRID)
    out = {}
    for name, ops in VARIANTS.items():
        flc = build_handover_flc(**ops)
        drift = float(np.abs(flc.evaluate_batch(GRID) - ref).mean())
        _, mp = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_ping
        )
        _, mc = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_cross
        )
        out[name] = {
            "drift": drift,
            "ping_handovers": mp.n_handovers,
            "cross_handovers": mc.n_handovers,
        }
    return out


def test_x4_inference_ablation(benchmark):
    results = run_once(benchmark, ablate)
    assert results["min-max"]["drift"] == 0.0
    # operator swaps move the surface only modestly on a Ruspini
    # partition with a complete rule base
    for name, r in results.items():
        assert r["drift"] < 0.12, name
    # the conjunction t-norm does not matter for the headline...
    assert results["prod-max"]["ping_handovers"] == 0
    # ...but max aggregation does: bounded sum re-introduces the false
    # handover on the boundary walk (rule-mass pile-up past 0.7)
    assert results["min-bsum"]["ping_handovers"] >= 1
    assert results["prod-bsum"]["ping_handovers"] >= 1
    # min-max (the paper configuration) executes all three crossings
    assert results["min-max"]["cross_handovers"] == 3
    assert results["prod-max"]["cross_handovers"] == 3
