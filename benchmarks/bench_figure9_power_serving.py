"""F9 — regenerate paper Fig. 9 (received power from BS(0,0)).

Shape assertions: the serving power decays as the MS walks away, within
the paper's −140…−60 dB plotting band.
"""

import numpy as np

from repro.experiments import figure_9


def test_figure9_serving_power(benchmark):
    fig = benchmark(figure_9)
    power = fig.series["Electric Field Intensity BS(0, 0)"]
    assert -140.0 < fig.meta["min_dbw"] and fig.meta["max_dbw"] < -60.0
    early = power[: len(power) // 4].mean()
    late = power[-len(power) // 4:].mean()
    assert late < early - 5.0  # walking away: clearly weaker at the end
    assert np.all(np.isfinite(power))
    assert fig.render()
