"""F8 — regenerate paper Fig. 8 (random-walk pattern, crossing walk).

The frozen seed must reproduce the paper's printed cell sequence
``(0,0) → (-1,2) → (-2,1) → (-1,2)`` exactly.
"""

from repro.experiments import figure_8


def test_figure8_crossing_walk(benchmark):
    fig = benchmark(figure_8)
    assert fig.meta["cell_sequence"] == [(0, 0), (-1, 2), (-2, 1), (-1, 2)]
    assert len(fig.meta["waypoints"]) == 11  # nwalk = 10
    assert fig.render()
