"""X2 — defuzzifier ablation.

The paper never names its defuzzifier (DESIGN.md substitution #3 argues
for centroid).  This bench evaluates the full controller surface under
each strategy and measures (a) how far the decision values drift from
the centroid reference and (b) whether the paper's headline scenario
outcomes survive the swap.
"""

import numpy as np
from conftest import run_once

from repro.core import FuzzyHandoverSystem, build_handover_flc
from repro.experiments import SCENARIO_CROSSING, SCENARIO_PINGPONG
from repro.sim import SimulationParameters, run_trace

RNG = np.random.default_rng(42)
GRID = {
    "CSSP": RNG.uniform(-10, 10, 500),
    "SSN": RNG.uniform(-120, -80, 500),
    "DMB": RNG.uniform(0, 1.5, 500),
}


def ablate() -> dict[str, dict[str, float]]:
    params = SimulationParameters()
    t_ping = SCENARIO_PINGPONG.generate(params)
    t_cross = SCENARIO_CROSSING.generate(params)
    reference = build_handover_flc("min", "max", "min", "centroid")
    ref_out = reference.evaluate_batch(GRID)
    out: dict[str, dict[str, float]] = {}
    for name in ("centroid", "bisector", "mom", "wavg"):
        flc = build_handover_flc(defuzzifier=name)
        drift = float(np.abs(flc.evaluate_batch(GRID) - ref_out).mean())
        _, m_ping = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_ping
        )
        _, m_cross = run_trace(
            params, FuzzyHandoverSystem(flc=flc, cell_radius_km=1.0), t_cross
        )
        out[name] = {
            "mean_drift": drift,
            "pingpong_handovers": m_ping.n_handovers,
            "crossing_handovers": m_cross.n_handovers,
        }
    return out


def test_x2_defuzzifier_ablation(benchmark):
    results = run_once(benchmark, ablate)
    assert results["centroid"]["mean_drift"] == 0.0
    # area-based alternatives track the centroid closely...
    assert results["bisector"]["mean_drift"] < 0.05
    assert results["wavg"]["mean_drift"] < 0.1
    # ...and the ping-pong headline survives every smooth defuzzifier
    for name in ("centroid", "bisector", "wavg"):
        assert results[name]["pingpong_handovers"] == 0, name
    # mean-of-maximum is the known outlier (plateau jumps) — report only
    assert results["mom"]["mean_drift"] >= results["bisector"]["mean_drift"]
