"""X5 — scalar vs vectorised FLC evaluation throughput.

The hpc-parallel guidance: find the bottleneck, vectorise it.  The
controller's batch path replaces the per-sample Python loop with a
handful of NumPy kernels; the sampling-free weighted-average defuzzifier
removes the (N × resolution) surface on top.  These are true calibrated
micro-benchmarks — compare the three groups' ops/sec in the output
table.
"""

import numpy as np
import pytest

from repro.core import build_handover_flc

N = 2000
RNG = np.random.default_rng(123)
CSSP = RNG.uniform(-10, 10, N)
SSN = RNG.uniform(-120, -80, N)
DMB = RNG.uniform(0, 1.5, N)

FLC = build_handover_flc()
FLC_WAVG = build_handover_flc(defuzzifier="wavg")


def scalar_loop() -> np.ndarray:
    return np.array(
        [
            FLC.evaluate(CSSP=c, SSN=s, DMB=d)
            for c, s, d in zip(CSSP, SSN, DMB)
        ]
    )


def batch_centroid() -> np.ndarray:
    return FLC.evaluate_batch({"CSSP": CSSP, "SSN": SSN, "DMB": DMB})


def batch_wavg() -> np.ndarray:
    return FLC_WAVG.evaluate_batch({"CSSP": CSSP, "SSN": SSN, "DMB": DMB})


@pytest.mark.benchmark(group="x5-flc-eval")
def test_x5_scalar_loop(benchmark):
    out = benchmark.pedantic(scalar_loop, rounds=2, iterations=1,
                             warmup_rounds=0)
    assert out.shape == (N,)


@pytest.mark.benchmark(group="x5-flc-eval")
def test_x5_batch_centroid(benchmark):
    out = benchmark(batch_centroid)
    assert out.shape == (N,)
    # correctness: the vectorised path is bit-compatible with the loop
    ref = np.array(
        [FLC.evaluate(CSSP=CSSP[k], SSN=SSN[k], DMB=DMB[k]) for k in range(20)]
    )
    np.testing.assert_allclose(out[:20], ref, atol=1e-12)


@pytest.mark.benchmark(group="x5-flc-eval")
def test_x5_batch_wavg(benchmark):
    out = benchmark(batch_wavg)
    assert out.shape == (N,)
    # wavg tracks the centroid within a coarse tolerance
    np.testing.assert_allclose(out, batch_centroid(), atol=0.12)
