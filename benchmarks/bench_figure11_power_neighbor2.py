"""F11 — regenerate paper Fig. 11 (received power from BS(-2,1)).

Shape assertions: the second neighbour peaks during the walk's middle
dwell, after the first neighbour's initial approach.
"""

import numpy as np

from repro.experiments import figure_10, figure_11


def test_figure11_second_neighbor_power(benchmark):
    fig = benchmark(figure_11)
    p11 = fig.series["Electric Field Intensity BS(-2, 1)"]
    p10 = figure_10().series["Electric Field Intensity BS(-1, 2)"]
    n = len(p10)
    assert int(np.argmax(p10[: n // 2])) < int(np.argmax(p11))
    assert -140.0 < fig.meta["min_dbw"] and fig.meta["max_dbw"] < -60.0
    assert fig.render()
